"""Code generation: GProb IR (and deterministic Stan blocks) to Python source.

The backends of the paper emit Pyro / NumPyro Python modules; ours emit
modules targeting :mod:`repro.backends.runtime`.  A generated module contains

* ``transformed_data(data...)`` — pre-processing run once before inference
  (§3.3: "compiled into a function that takes as argument the data");
* ``model(data..., transformed data...)`` — the probabilistic model, produced
  from the GProb IR of the selected compilation scheme;
* ``guide(...)`` — when the program has a DeepStan ``guide`` block (§5.1);
* ``generated_quantities(data..., parameters...)`` — post-processing applied
  to each posterior draw;
* ``_user_*`` functions for the Stan ``functions`` block.

The two backends share the generator; they differ in how loops are emitted
(plain Python ``for`` for the Pyro backend; lambda-lifted ``fori_loop`` bodies
for the NumPyro backend, §4) and in which runtime the driver pairs them with.
"""

from __future__ import annotations

import keyword
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core import stanlib
from repro.core.schemes import CompileError
from repro.frontend import ast
from repro.gprob import ir


RESERVED_NAMES = {
    "sample", "observe", "factor", "param", "np", "Tensor", "fori_loop",
    "model", "guide", "transformed_data", "generated_quantities", "range",
    "print", "sum", "min", "max", "abs", "pow", "data",
} | set(stanlib.KNOWN_DISTRIBUTIONS)


def sanitize(name: str) -> str:
    """Rename Stan identifiers that collide with Python keywords or the runtime.

    This is the name-handling pass described in §4 (e.g. ``lambda`` is a
    common Stan parameter name but a Python keyword).  Dotted DeepStan network
    parameters (``mlp.l1.weight``) become flat identifiers.
    """
    flat = name.replace(".", "_")
    if keyword.iskeyword(flat) or flat in RESERVED_NAMES or flat.startswith("__"):
        return flat + "__"
    return flat


@dataclass
class CodegenContext:
    """Names visible to the generator."""

    backend: str = "pyro"  # or "numpyro"
    user_functions: Set[str] = field(default_factory=set)
    networks: Set[str] = field(default_factory=set)
    # network name -> {relative parameter path -> Stan parameter name}
    # (the lifted parameters of §5.3, e.g. {"mlp": {"l1.weight": "mlp.l1.weight"}})
    network_params: Dict[str, Dict[str, str]] = field(default_factory=dict)
    loop_vars: Set[str] = field(default_factory=set)
    counter: List[int] = field(default_factory=lambda: [0])

    def fresh(self, prefix: str) -> str:
        self.counter[0] += 1
        return f"_{prefix}_{self.counter[0]}"


class Emitter:
    """Indentation-aware line collector."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, line: str, indent: int) -> None:
        self.lines.append("    " * indent + line)

    def blank(self) -> None:
        self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
def gen_expr(expr: ast.Expr, ctx: CodegenContext) -> str:
    """Python code for a deterministic Stan expression."""
    if expr is None:
        return "None"
    if isinstance(expr, ast.IntLiteral):
        return repr(int(expr.value))
    if isinstance(expr, ast.RealLiteral):
        return repr(float(expr.value))
    if isinstance(expr, ast.StringLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.Variable):
        if expr.name == "__none__":
            return "None"
        return sanitize(expr.name)
    if isinstance(expr, ast.BinaryOp):
        left = gen_expr(expr.left, ctx)
        right = gen_expr(expr.right, ctx)
        op = expr.op
        if op == "+":
            return f"({left} + {right})"
        if op == "-":
            return f"({left} - {right})"
        if op == "*":
            return f"_mul({left}, {right})"
        if op == "/":
            return f"_div({left}, {right})"
        if op == ".*":
            return f"_elt_mul({left}, {right})"
        if op == "./":
            return f"_elt_div({left}, {right})"
        if op == "^":
            return f"_pow({left}, {right})"
        if op == "%":
            return f"_mod({left}, {right})"
        if op == "%/%":
            return f"_idiv({left}, {right})"
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return f"_cmp({op!r}, {left}, {right})"
        if op == "&&":
            return f"_and({left}, {right})"
        if op == "||":
            return f"_or({left}, {right})"
        raise CompileError(f"unsupported binary operator {op!r}")
    if isinstance(expr, ast.UnaryOp):
        operand = gen_expr(expr.operand, ctx)
        if expr.op == "-":
            return f"(-({operand}))"
        if expr.op == "+":
            return f"({operand})"
        if expr.op == "!":
            return f"_not({operand})"
        raise CompileError(f"unsupported unary operator {expr.op!r}")
    if isinstance(expr, ast.Conditional):
        return (f"({gen_expr(expr.then, ctx)} if _truthy({gen_expr(expr.cond, ctx)})"
                f" else {gen_expr(expr.otherwise, ctx)})")
    if isinstance(expr, ast.FunctionCall):
        return gen_call(expr, ctx)
    if isinstance(expr, ast.Indexed):
        base = gen_expr(expr.base, ctx)
        indices = ", ".join(gen_index(i, ctx) for i in expr.indices)
        return f"_index({base}, {indices})"
    if isinstance(expr, ast.ArrayLiteral):
        return "_array(" + ", ".join(gen_expr(e, ctx) for e in expr.elements) + ")"
    if isinstance(expr, ast.RowVectorLiteral):
        return "_row_vector(" + ", ".join(gen_expr(e, ctx) for e in expr.elements) + ")"
    if isinstance(expr, ast.Transpose):
        return f"_transpose({gen_expr(expr.operand, ctx)})"
    if isinstance(expr, ast.Range):
        lo = gen_expr(expr.lower, ctx) if expr.lower else "None"
        hi = gen_expr(expr.upper, ctx) if expr.upper else "None"
        return f"vectorized_range({lo}, {hi})"
    raise CompileError(f"cannot generate code for expression {type(expr).__name__}")


def gen_index(index: ast.Index, ctx: CodegenContext) -> str:
    if index.is_slice:
        lo = gen_expr(index.lower, ctx) if index.lower is not None else "None"
        hi = gen_expr(index.upper, ctx) if index.upper is not None else "None"
        return f"_slice_index({lo}, {hi})"
    return gen_expr(index.expr, ctx)


def gen_call(expr: ast.FunctionCall, ctx: CodegenContext) -> str:
    args = ", ".join(gen_expr(a, ctx) for a in expr.args)
    name = expr.name
    if name in ctx.user_functions:
        return f"_user_{sanitize(name)}({args})"
    if name in ctx.networks:
        lifted = ctx.network_params.get(name, {})
        pairs = ", ".join(f"{path!r}: {sanitize(param)}" for path, param in lifted.items())
        return f"_call_network(_NETWORKS[{name!r}], {{{pairs}}}{', ' if args else ''}{args})"
    return f"_call({name!r}{', ' if args else ''}{args})"


def gen_dist(dist: ir.DistCall, ctx: CodegenContext) -> str:
    """Python code constructing a runtime distribution from a DistCall."""
    if dist.name not in stanlib.KNOWN_DISTRIBUTIONS:
        raise CompileError(f"unknown distribution {dist.name!r}")
    args = [gen_expr(a, ctx) for a in dist.args]
    if dist.shape:
        shape_code = "(" + ", ".join(f"_int({gen_expr(s, ctx)})" for s in dist.shape) + ("," if len(dist.shape) == 1 else "") + ")"
        args.append(f"shape={shape_code}")
    return f"{dist.name}({', '.join(args)})"


# ----------------------------------------------------------------------
# probabilistic code (GProb IR)
# ----------------------------------------------------------------------
class ProbCodegen:
    """Generate the body of a ``model``/``guide`` function from GProb IR."""

    def __init__(self, ctx: CodegenContext, returned: Sequence[str]):
        self.ctx = ctx
        self.returned = list(returned)

    def generate(self, expr: ir.GExpr, emitter: Emitter, indent: int) -> None:
        self._gen(expr, emitter, indent, toplevel=True)

    # ------------------------------------------------------------------
    def _gen(self, expr: ir.GExpr, em: Emitter, indent: int, toplevel: bool = False) -> None:
        ctx = self.ctx
        if expr is None:
            em.emit("pass", indent)
            return
        if isinstance(expr, ir.Let):
            self._gen_binding(expr.name, expr.value, em, indent)
            self._gen(expr.body, em, indent, toplevel)
            return
        if isinstance(expr, ir.LetIndexed):
            name = sanitize(expr.name)
            idx = ", ".join(gen_index(i, ctx) for i in expr.indices)
            value_code = self._value_code(expr.name, expr.value)
            em.emit(f"{name} = _index_update({name}, ({idx},), {value_code})", indent)
            self._gen(expr.body, em, indent, toplevel)
            return
        if isinstance(expr, ir.LetState):
            self._gen_state(expr, em, indent)
            self._gen(expr.body, em, indent, toplevel)
            return
        if isinstance(expr, ir.Seq):
            self._gen_effect(expr.first, em, indent)
            self._gen(expr.second, em, indent, toplevel)
            return
        if isinstance(expr, ir.ReturnE):
            if toplevel:
                if expr.names:
                    pairs = ", ".join(f"{name!r}: {sanitize(name)}" for name in expr.names)
                    em.emit(f"return {{{pairs}}}", indent)
                elif expr.value is not None:
                    em.emit(f"return {gen_expr(expr.value, ctx)}", indent)
                else:
                    em.emit("return None", indent)
            else:
                # Loop/branch bodies end by returning their state implicitly.
                em.emit("pass", indent)
            return
        if isinstance(expr, ir.Unit):
            em.emit("pass", indent)
            return
        # Effects appearing in tail position.
        self._gen_effect(expr, em, indent)

    # ------------------------------------------------------------------
    def _value_code(self, target: str, value: ir.GExpr) -> str:
        ctx = self.ctx
        if isinstance(value, ir.ReturnE):
            return gen_expr(value.value, ctx)
        if isinstance(value, ir.Sample):
            return f"sample(_fresh_site({target!r}), {gen_dist(value.dist, ctx)})"
        if isinstance(value, ir.StanE):
            return gen_expr(value.expr, ctx)
        raise CompileError(f"unsupported binding value {type(value).__name__}")

    def _gen_binding(self, name: str, value: ir.GExpr, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        target = sanitize(name)
        if isinstance(value, ir.Sample):
            em.emit(f"{target} = sample({name!r}, {gen_dist(value.dist, ctx)})", indent)
        elif isinstance(value, ir.ReturnE):
            em.emit(f"{target} = {gen_expr(value.value, ctx)}", indent)
        elif isinstance(value, ir.InitVar):
            dims = ", ".join(gen_expr(d, ctx) for d in value.decl.dims)
            em.emit(f"{target} = _zeros({dims})", indent)
        elif isinstance(value, ir.StanE):
            em.emit(f"{target} = {gen_expr(value.expr, ctx)}", indent)
        else:
            raise CompileError(f"unsupported let value {type(value).__name__}")

    def _gen_effect(self, expr: ir.GExpr, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        if isinstance(expr, ir.Observe):
            em.emit(f"observe({gen_dist(expr.dist, ctx)}, {gen_expr(expr.value, ctx)})", indent)
        elif isinstance(expr, ir.Factor):
            em.emit(f"factor(_fresh_site('target'), {gen_expr(expr.value, ctx)})", indent)
        elif isinstance(expr, ir.StanE):
            em.emit(f"_ = {gen_expr(expr.expr, ctx)}", indent)
        elif isinstance(expr, ir.Sample):
            em.emit(f"_ = sample(_fresh_site('sample'), {gen_dist(expr.dist, ctx)})", indent)
        else:
            raise CompileError(f"unsupported effect {type(expr).__name__}")

    # ------------------------------------------------------------------
    def _gen_state(self, expr: ir.LetState, em: Emitter, indent: int) -> None:
        value = expr.value
        if isinstance(value, ir.ForRangeG):
            self._gen_for_range(value, em, indent)
        elif isinstance(value, ir.ForEachG):
            self._gen_for_each(value, em, indent)
        elif isinstance(value, ir.WhileG):
            self._gen_while(value, em, indent)
        elif isinstance(value, ir.IfG):
            self._gen_if(value, em, indent)
        else:
            raise CompileError(f"unsupported state binding {type(value).__name__}")

    def _gen_for_range(self, loop: ir.ForRangeG, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        lo = gen_expr(loop.lower, ctx)
        hi = gen_expr(loop.upper, ctx)
        var = sanitize(loop.var)
        state = [sanitize(s) for s in loop.state]
        if ctx.backend == "numpyro":
            # Lambda-lift the loop body into a pure function and drive it with
            # fori_loop, as the NumPyro backend does (§4).
            fn_name = ctx.fresh("fori")
            em.emit(f"def {fn_name}({var}, __acc):", indent)
            if state:
                em.emit(f"{', '.join(state)}{',' if len(state) == 1 else ''} = __acc", indent + 1)
            self._gen(loop.body, em, indent + 1)
            if state:
                em.emit(f"return ({', '.join(state)}{',' if len(state) == 1 else ''})", indent + 1)
            else:
                em.emit("return None", indent + 1)
            init = f"({', '.join(state)}{',' if len(state) == 1 else ''})" if state else "None"
            em.emit(f"__acc = fori_loop(_int({lo}), _int({hi}) + 1, {fn_name}, {init})", indent)
            if state:
                em.emit(f"{', '.join(state)}{',' if len(state) == 1 else ''} = __acc", indent)
        else:
            em.emit(f"for {var} in _irange({lo}, {hi}):", indent)
            self._gen(loop.body, em, indent + 1)

    def _gen_for_each(self, loop: ir.ForEachG, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        var = sanitize(loop.var)
        seq = gen_expr(loop.sequence, ctx)
        em.emit(f"for {var} in _iter({seq}):", indent)
        self._gen(loop.body, em, indent + 1)

    def _gen_while(self, loop: ir.WhileG, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        em.emit(f"while _truthy({gen_expr(loop.cond, ctx)}):", indent)
        self._gen(loop.body, em, indent + 1)

    def _gen_if(self, branch: ir.IfG, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        em.emit(f"if _truthy({gen_expr(branch.cond, ctx)}):", indent)
        self._gen(branch.then, em, indent + 1)
        em.emit("else:", indent)
        self._gen(branch.otherwise, em, indent + 1)


# ----------------------------------------------------------------------
# deterministic code (functions, transformed data, generated quantities)
# ----------------------------------------------------------------------
class DetCodegen:
    """Generate imperative Python for deterministic Stan statement lists."""

    def __init__(self, ctx: CodegenContext):
        self.ctx = ctx

    def gen_stmts(self, stmts: Sequence[ast.Stmt], em: Emitter, indent: int) -> None:
        if not stmts:
            em.emit("pass", indent)
            return
        for stmt in stmts:
            self.gen_stmt(stmt, em, indent)

    def gen_stmt(self, stmt: ast.Stmt, em: Emitter, indent: int) -> None:
        ctx = self.ctx
        if isinstance(stmt, ast.DeclStmt):
            decl = stmt.decl
            name = sanitize(decl.name)
            if decl.init is not None:
                em.emit(f"{name} = {gen_expr(decl.init, ctx)}", indent)
            else:
                dims = ", ".join(gen_expr(d, ctx) for d in decl.dims)
                em.emit(f"{name} = _zeros({dims})", indent)
        elif isinstance(stmt, ast.Assign):
            value_expr = stmt.value
            if stmt.op != "=":
                value_expr = ast.BinaryOp(op=stmt.op[0], left=stmt.lhs, right=stmt.value)
            if isinstance(stmt.lhs, ast.Variable):
                em.emit(f"{sanitize(stmt.lhs.name)} = {gen_expr(value_expr, ctx)}", indent)
            elif isinstance(stmt.lhs, ast.Indexed) and isinstance(stmt.lhs.base, ast.Variable):
                name = sanitize(stmt.lhs.base.name)
                idx = ", ".join(gen_index(i, ctx) for i in stmt.lhs.indices)
                em.emit(f"{name} = _index_update({name}, ({idx},), {gen_expr(value_expr, ctx)})", indent)
            else:
                raise CompileError(f"{stmt.loc}: unsupported assignment target")
        elif isinstance(stmt, ast.For):
            var = sanitize(stmt.var)
            if stmt.is_range:
                em.emit(f"for {var} in _irange({gen_expr(stmt.lower, ctx)}, {gen_expr(stmt.upper, ctx)}):", indent)
            else:
                em.emit(f"for {var} in _iter({gen_expr(stmt.sequence, ctx)}):", indent)
            self.gen_stmts(stmt.body, em, indent + 1)
        elif isinstance(stmt, ast.While):
            em.emit(f"while _truthy({gen_expr(stmt.cond, ctx)}):", indent)
            self.gen_stmts(stmt.body, em, indent + 1)
        elif isinstance(stmt, ast.If):
            em.emit(f"if _truthy({gen_expr(stmt.cond, ctx)}):", indent)
            self.gen_stmts(stmt.then_body, em, indent + 1)
            if stmt.else_body:
                em.emit("else:", indent)
                self.gen_stmts(stmt.else_body, em, indent + 1)
        elif isinstance(stmt, ast.BlockStmt):
            self.gen_stmts(stmt.body, em, indent)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                em.emit("return None", indent)
            else:
                em.emit(f"return {gen_expr(stmt.value, ctx)}", indent)
        elif isinstance(stmt, ast.CallStmt):
            em.emit(f"_ = {gen_expr(stmt.call, ctx)}", indent)
        elif isinstance(stmt, (ast.PrintStmt, ast.Skip)):
            em.emit("pass", indent)
        elif isinstance(stmt, ast.RejectStmt):
            em.emit("raise RuntimeError('reject() called')", indent)
        elif isinstance(stmt, (ast.Break,)):
            em.emit("break", indent)
        elif isinstance(stmt, (ast.Continue,)):
            em.emit("continue", indent)
        elif isinstance(stmt, ast.TildeStmt):
            raise CompileError(f"{stmt.loc}: '~' statements are not allowed in deterministic blocks")
        elif isinstance(stmt, ast.TargetPlus):
            raise CompileError(f"{stmt.loc}: 'target +=' is not allowed in deterministic blocks")
        else:
            raise CompileError(f"cannot generate code for statement {type(stmt).__name__}")


# ----------------------------------------------------------------------
# whole-module generation
# ----------------------------------------------------------------------
def generate_module(program: ast.Program, model_ir: ir.GExpr, backend: str = "pyro",
                    guide_ir: Optional[ir.GExpr] = None, scheme: str = "comprehensive") -> str:
    """Generate the full Python module source for a compiled program."""
    network_names = {n.name for n in program.networks}
    network_params: Dict[str, Dict[str, str]] = {}
    for decl in program.parameters.decls:
        if "." in decl.name:
            prefix, _, path = decl.name.partition(".")
            if prefix in network_names:
                network_params.setdefault(prefix, {})[path] = decl.name
    ctx = CodegenContext(
        backend=backend,
        user_functions={f.name for f in program.functions},
        networks=network_names,
        network_params=network_params,
    )
    em = Emitter()
    em.emit(f'"""Code generated by the {backend} backend ({scheme} scheme) '
            f'for Stan model {program.name!r}."""', 0)
    em.emit("from repro.backends.runtime import *", 0)
    em.blank()
    em.emit("_NETWORKS = {}", 0)
    em.blank()

    det = DetCodegen(ctx)

    # --- user functions -------------------------------------------------
    for func in program.functions:
        args = ", ".join(sanitize(a.name) for a in func.args)
        em.emit(f"def _user_{sanitize(func.name)}({args}):", 0)
        det.gen_stmts(func.body, em, 1)
        em.blank()

    data_names = [d.name for d in program.data.decls]
    td_names = [d.name for d in program.transformed_data.decls]
    param_names = [d.name for d in program.parameters.decls]
    tp_names = [d.name for d in program.transformed_parameters.decls]
    gq_names = [d.name for d in program.generated_quantities.decls]

    def kwarg_list(names: Sequence[str]) -> str:
        return ", ".join(f"{sanitize(n)}=None" for n in names)

    # --- transformed data -------------------------------------------------
    em.emit(f"def transformed_data({kwarg_list(data_names)}):", 0)
    if program.transformed_data.is_empty:
        em.emit("return {}", 1)
    else:
        for decl in program.transformed_data.decls:
            det.gen_stmt(ast.DeclStmt(decl=decl), em, 1)
        det.gen_stmts(program.transformed_data.stmts, em, 1)
        pairs = ", ".join(f"{name!r}: {sanitize(name)}" for name in td_names)
        em.emit(f"return {{{pairs}}}", 1)
    em.blank()

    # --- model -----------------------------------------------------------
    model_args = kwarg_list(data_names + td_names)
    em.emit(f"def model({model_args}):", 0)
    prob = ProbCodegen(ctx, returned=param_names + tp_names)
    prob.generate(model_ir, em, 1)
    em.blank()

    # --- guide -----------------------------------------------------------
    if guide_ir is not None:
        guide_args = kwarg_list(data_names + td_names)
        em.emit(f"def guide({guide_args}):", 0)
        for decl in program.guide_parameters.decls:
            name = sanitize(decl.name)
            dims = ", ".join(gen_expr(d, ctx) for d in decl.dims)
            if decl.constraint.lower is not None and decl.constraint.upper is None:
                # Positive guide parameters (e.g. scales) live in log space.
                em.emit(f"{name} = _positive_param({decl.name!r}, _zeros({dims}))", 1)
            else:
                em.emit(f"{name} = param({decl.name!r}, _zeros({dims}))", 1)
        guide_prob = ProbCodegen(ctx, returned=param_names)
        guide_prob.generate(guide_ir, em, 1)
        em.blank()

    # --- generated quantities ---------------------------------------------
    gq_args = kwarg_list(data_names + td_names + param_names + tp_names)
    em.emit(f"def generated_quantities({gq_args}):", 0)
    if program.generated_quantities.is_empty and not tp_names:
        em.emit("return {}", 1)
    else:
        # Transformed parameters are recomputed here because generated
        # quantities may depend on them (§3.3).
        for decl in program.generated_quantities.decls:
            det.gen_stmt(ast.DeclStmt(decl=decl), em, 1)
        det.gen_stmts(program.generated_quantities.stmts, em, 1)
        pairs = ", ".join(f"{name!r}: {sanitize(name)}" for name in gq_names)
        em.emit(f"return {{{pairs}}}", 1)
    em.blank()
    return em.source()
