"""Static analysis of non-generative Stan features (Table 1 of the paper).

A Stan model defines an unnormalised joint density; three widely-used idioms
have no direct generative reading (§2.2):

* **left expressions** — the left-hand side of ``~`` is an arbitrary
  expression (``sum(phi) ~ normal(0, 0.001*N)``);
* **multiple updates** — the same parameter appears on the left of several
  ``~`` statements;
* **implicit priors** — a parameter has no ``~`` statement at all.

``target +=`` statements are likewise non-generative.  The analyser reports
which features each program uses; the generative translation refuses programs
that use any of them, while the comprehensive translation handles all of them
(Table 1's "Compilation" column).  The corpus benchmark
(``benchmarks/bench_table1_features.py``) reports prevalence over the bundled
corpus the way the paper reports prevalence over ``example-models``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.frontend import ast


@dataclass
class FeatureReport:
    """Which non-generative features a program uses."""

    left_expressions: List[ast.TildeStmt] = field(default_factory=list)
    multiple_update_params: List[str] = field(default_factory=list)
    implicit_prior_params: List[str] = field(default_factory=list)
    target_updates: List[ast.TargetPlus] = field(default_factory=list)
    truncations: List[ast.TildeStmt] = field(default_factory=list)
    tilde_statements: int = 0
    parameters: List[str] = field(default_factory=list)

    @property
    def has_left_expression(self) -> bool:
        return bool(self.left_expressions)

    @property
    def has_multiple_updates(self) -> bool:
        return bool(self.multiple_update_params)

    @property
    def has_implicit_prior(self) -> bool:
        return bool(self.implicit_prior_params)

    @property
    def has_target_update(self) -> bool:
        return bool(self.target_updates)

    @property
    def has_truncation(self) -> bool:
        return bool(self.truncations)

    @property
    def is_generative(self) -> bool:
        """Whether the simple generative translation of §2.1 is applicable."""
        return not (
            self.has_left_expression
            or self.has_multiple_updates
            or self.has_implicit_prior
            or self.has_target_update
        )

    def feature_flags(self) -> Dict[str, bool]:
        return {
            "left_expression": self.has_left_expression,
            "multiple_updates": self.has_multiple_updates,
            "implicit_prior": self.has_implicit_prior,
            "target_update": self.has_target_update,
            "truncation": self.has_truncation,
        }


def lhs_base_name(expr: ast.Expr) -> Optional[str]:
    """Base variable name of an lvalue-like expression, if any."""
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.Indexed):
        return lhs_base_name(expr.base)
    return None


def is_simple_lhs(expr: ast.Expr) -> bool:
    """Whether an expression is a variable or an indexed variable.

    Anything else on the left of ``~`` is a *left expression* in the paper's
    terminology (Table 1, row 1).
    """
    if isinstance(expr, ast.Variable):
        return True
    if isinstance(expr, ast.Indexed):
        return is_simple_lhs(expr.base)
    return False


def _model_scope_stmts(program: ast.Program) -> List[ast.Stmt]:
    """Statements contributing to the density: transformed parameters + model."""
    return list(program.transformed_parameters.stmts) + list(program.model.stmts)


def analyze(program: ast.Program) -> FeatureReport:
    """Compute the non-generative feature report of a program."""
    report = FeatureReport()
    param_names = [decl.name for decl in program.parameters.decls]
    report.parameters = list(param_names)
    param_set: Set[str] = set(param_names)

    tilde_lhs_counts: Counter = Counter()

    for stmt in ast.walk_stmts(_model_scope_stmts(program)):
        if isinstance(stmt, ast.TildeStmt):
            report.tilde_statements += 1
            if stmt.has_truncation:
                report.truncations.append(stmt)
            if not is_simple_lhs(stmt.lhs):
                report.left_expressions.append(stmt)
            else:
                name = lhs_base_name(stmt.lhs)
                if name in param_set:
                    tilde_lhs_counts[name] += 1
        elif isinstance(stmt, ast.TargetPlus):
            report.target_updates.append(stmt)

    report.multiple_update_params = sorted(
        name for name, count in tilde_lhs_counts.items() if count > 1
    )
    # Parameters transformed in `transformed parameters` and then given a
    # prior under the transformed name still count as implicit for the raw
    # parameter (this matches how the paper's Table 1 counts the feature: no
    # explicit `~` for the declared parameter).
    report.implicit_prior_params = sorted(
        name for name in param_names if tilde_lhs_counts.get(name, 0) == 0
    )
    return report


@dataclass
class CorpusFeatureSummary:
    """Aggregated prevalence over a corpus of programs (Table 1's "%" column)."""

    total: int = 0
    left_expression: int = 0
    multiple_updates: int = 0
    implicit_prior: int = 0
    target_update: int = 0
    truncation: int = 0
    generative: int = 0

    def percentages(self) -> Dict[str, float]:
        if self.total == 0:
            return {}
        return {
            "left_expression": 100.0 * self.left_expression / self.total,
            "multiple_updates": 100.0 * self.multiple_updates / self.total,
            "implicit_prior": 100.0 * self.implicit_prior / self.total,
            "target_update": 100.0 * self.target_update / self.total,
            "truncation": 100.0 * self.truncation / self.total,
            "generative": 100.0 * self.generative / self.total,
        }


def summarize_corpus(reports: List[FeatureReport]) -> CorpusFeatureSummary:
    """Aggregate feature prevalence over many programs."""
    summary = CorpusFeatureSummary(total=len(reports))
    for report in reports:
        flags = report.feature_flags()
        summary.left_expression += int(flags["left_expression"])
        summary.multiple_updates += int(flags["multiple_updates"])
        summary.implicit_prior += int(flags["implicit_prior"])
        summary.target_update += int(flags["target_update"])
        summary.truncation += int(flags["truncation"])
        summary.generative += int(report.is_generative)
    return summary
