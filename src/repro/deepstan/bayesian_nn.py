"""The Bayesian multi-layer perceptron of §5.3 / Figure 9.

The network's weights and biases are lifted to random variables with
``normal(0, 1)`` priors declared in the Stan ``parameters`` block
(``mlp.l1.weight`` ...), the guide proposes factorised Gaussians whose means
and log-scales are ``guide parameters``, and predictions are made by sampling
an ensemble of concrete networks from the fitted guide (the paper samples 100
networks and lets them vote).

Two implementations again: :class:`DeepStanBayesianMLP` (compiled from the
DeepStan source below) and :class:`HandWrittenBayesianMLP` (written directly
against the runtime), so RQ5's accuracy/agreement comparison can be run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff import nn, ops
from repro.autodiff.tensor import as_tensor
from repro.core.compiler import CompiledModel, compile_model
from repro.deepstan.clustering import prediction_accuracy, prediction_agreement
from repro.infer.svi import SVI
from repro.ppl import distributions as dist
from repro.ppl import primitives
from repro.ppl.primitives import observe, param, sample

BAYESIAN_MLP_SOURCE = """
networks {
  matrix mlp(matrix imgs);
}
data {
  int batch_size;
  int nx;
  int nh;
  int ny;
  matrix[batch_size, nx] imgs;
  int<lower=1, upper=10> labels[batch_size];
}
parameters {
  real mlp.l1.weight[nh, nx];
  real mlp.l1.bias[nh];
  real mlp.l2.weight[ny, nh];
  real mlp.l2.bias[ny];
}
model {
  matrix[batch_size, ny] lambda;
  mlp.l1.weight ~ normal(0, 1);
  mlp.l1.bias ~ normal(0, 1);
  mlp.l2.weight ~ normal(0, 1);
  mlp.l2.bias ~ normal(0, 1);
  lambda = mlp(imgs);
  labels ~ categorical_logit(lambda);
}
guide parameters {
  real w1_mu[nh, nx];
  real w1_sigma[nh, nx];
  real b1_mu[nh];
  real b1_sigma[nh];
  real w2_mu[ny, nh];
  real w2_sigma[ny, nh];
  real b2_mu[ny];
  real b2_sigma[ny];
}
guide {
  mlp.l1.weight ~ normal(w1_mu, 0.1 * exp(w1_sigma));
  mlp.l1.bias ~ normal(b1_mu, 0.1 * exp(b1_sigma));
  mlp.l2.weight ~ normal(w2_mu, 0.1 * exp(w2_sigma));
  mlp.l2.bias ~ normal(b2_mu, 0.1 * exp(b2_sigma));
}
"""

PARAM_SITES = ("mlp.l1.weight", "mlp.l1.bias", "mlp.l2.weight", "mlp.l2.bias")


@dataclass
class MLPResult:
    accuracy: float
    losses: List[float] = field(default_factory=list)


class _BayesianMLPBase:
    """Shared training / ensemble-prediction machinery."""

    def __init__(self, nx: int = 64, nh: int = 16, ny: int = 10, seed: int = 0,
                 prior_scale: float = 1.0):
        self.nx, self.nh, self.ny = nx, nh, ny
        self.seed = seed
        self.prior_scale = prior_scale
        self.mlp = nn.MLP([nx, nh, ny], activation="tanh", rng=np.random.default_rng(seed))
        self.losses: List[float] = []
        self._svi: Optional[SVI] = None

    # ------------------------------------------------------------------
    def _model(self, images: np.ndarray, labels: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def _guide(self, images: np.ndarray, labels: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def train(self, images: np.ndarray, labels: np.ndarray, epochs: int = 20,
              learning_rate: float = 0.05, batch_size: Optional[int] = None) -> "_BayesianMLPBase":
        primitives.clear_param_store()
        images = np.asarray(images, dtype=float)
        labels = np.asarray(labels, dtype=float)
        batch_size = batch_size or len(images)
        svi = SVI(lambda img, lab: self._model(img, lab)(),
                  lambda img, lab: self._guide(img, lab)(),
                  learning_rate=learning_rate, seed=self.seed)
        self._svi = svi
        num_batches = int(np.ceil(len(images) / batch_size))
        for _ in range(epochs):
            for b in range(num_batches):
                batch = slice(b * batch_size, (b + 1) * batch_size)
                loss = svi.step(images[batch], labels[batch])
                self.losses.append(loss)
        return self

    # ------------------------------------------------------------------
    def sample_networks(self, num_networks: int = 100) -> List[Dict[str, np.ndarray]]:
        """Sample concrete weight/bias settings from the fitted guide."""
        if self._svi is None:
            raise RuntimeError("train() must be called before sampling networks")
        draws = self._svi.sample_posterior(num_networks, np.zeros((1, self.nx)), np.ones(1),
                                           site_names=PARAM_SITES)
        return [
            {site: draws[site][i] for site in PARAM_SITES}
            for i in range(num_networks)
        ]

    def _logits(self, weights: Dict[str, np.ndarray], images: np.ndarray) -> np.ndarray:
        h = np.tanh(images @ weights["mlp.l1.weight"].T + weights["mlp.l1.bias"])
        return h @ weights["mlp.l2.weight"].T + weights["mlp.l2.bias"]

    def predict(self, images: np.ndarray, num_networks: int = 100) -> np.ndarray:
        """Ensemble vote over sampled networks; returns 1-based labels."""
        images = np.asarray(images, dtype=float)
        networks = self.sample_networks(num_networks)
        probs = np.zeros((len(images), self.ny))
        for weights in networks:
            logits = self._logits(weights, images)
            logits = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            probs += p / p.sum(axis=1, keepdims=True)
        return probs.argmax(axis=1) + 1

    def evaluate(self, images: np.ndarray, labels: np.ndarray, num_networks: int = 100) -> MLPResult:
        predictions = self.predict(images, num_networks)
        return MLPResult(accuracy=prediction_accuracy(predictions, labels), losses=list(self.losses))

    @staticmethod
    def agreement(predictions_a: np.ndarray, predictions_b: np.ndarray) -> float:
        return prediction_agreement(predictions_a, predictions_b)


class HandWrittenBayesianMLP(_BayesianMLPBase):
    """The Bayesian MLP written directly against the runtime primitives."""

    def _model(self, images: np.ndarray, labels: np.ndarray):
        def model():
            shapes = {
                "mlp.l1.weight": (self.nh, self.nx),
                "mlp.l1.bias": (self.nh,),
                "mlp.l2.weight": (self.ny, self.nh),
                "mlp.l2.bias": (self.ny,),
            }
            weights = {
                site: sample(site, dist.Normal(np.zeros(shape), self.prior_scale * np.ones(shape)))
                for site, shape in shapes.items()
            }
            x = as_tensor(images)
            h = ops.tanh(ops.add(ops.matmul(x, ops.transpose(as_tensor(weights["mlp.l1.weight"]))),
                                 weights["mlp.l1.bias"]))
            logits = ops.add(ops.matmul(h, ops.transpose(as_tensor(weights["mlp.l2.weight"]))),
                             weights["mlp.l2.bias"])
            observe(dist.CategoricalLogit(logits), np.asarray(labels) - 1, name="labels")

        return lambda: model()

    def _guide(self, images: np.ndarray, labels: np.ndarray):
        def guide():
            shapes = {
                "mlp.l1.weight": ("w1", (self.nh, self.nx)),
                "mlp.l1.bias": ("b1", (self.nh,)),
                "mlp.l2.weight": ("w2", (self.ny, self.nh)),
                "mlp.l2.bias": ("b2", (self.ny,)),
            }
            for site, (prefix, shape) in shapes.items():
                mu = param(f"{prefix}_mu", np.zeros(shape))
                log_sigma = param(f"{prefix}_sigma", np.full(shape, 0.0))
                sample(site, dist.Normal(mu, 0.1 * ops.exp(as_tensor(log_sigma))))

        return lambda: guide()


class DeepStanBayesianMLP(_BayesianMLPBase):
    """The Bayesian MLP written in DeepStan (Figure 9), compiled to the runtime."""

    def __init__(self, nx: int = 64, nh: int = 16, ny: int = 10, seed: int = 0,
                 prior_scale: float = 1.0, backend: str = "pyro"):
        super().__init__(nx=nx, nh=nh, ny=ny, seed=seed, prior_scale=prior_scale)
        source = BAYESIAN_MLP_SOURCE
        if prior_scale != 1.0:
            # The §6.2 ablation: changing the priors from normal(0, 1) to
            # normal(0, 10) increases accuracy from 0.92 to 0.96.
            source = source.replace("~ normal(0, 1)", f"~ normal(0, {prior_scale})")
        self.compiled: CompiledModel = compile_model(source, backend=backend,
                                                     scheme="comprehensive", name="bayes_mlp")
        self.compiled.bind_networks({"mlp": self.mlp})

    def _data(self, images: np.ndarray, labels: np.ndarray) -> Dict[str, np.ndarray]:
        return {
            "batch_size": len(images),
            "nx": self.nx,
            "nh": self.nh,
            "ny": self.ny,
            "imgs": np.asarray(images, dtype=float),
            "labels": np.asarray(labels, dtype=float),
        }

    def _model(self, images: np.ndarray, labels: np.ndarray):
        return self.compiled.model_callable(self._data(images, labels))

    def _guide(self, images: np.ndarray, labels: np.ndarray):
        return self.compiled.guide_callable(self._data(images, labels))
