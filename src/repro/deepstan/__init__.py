"""DeepStan: the paper's extensions for deep probabilistic programming (§5).

The language-level extensions (``networks``, ``guide parameters`` and
``guide`` blocks) are handled by the frontend and the compiler; this package
provides the supporting pieces used by the §5/§6.2 experiments:

* :mod:`repro.deepstan.datasets` — the synthetic handwritten-digit substitute
  for MNIST (see DESIGN.md's substitution table);
* :mod:`repro.deepstan.clustering` — KMeans and the pairwise-F1 metric used to
  evaluate VAE latent spaces (RQ5);
* :mod:`repro.deepstan.vae` — the DeepStan VAE of Figure 8 plus a hand-written
  runtime VAE for the comparison;
* :mod:`repro.deepstan.bayesian_nn` — the Bayesian MLP of Figure 9 plus its
  hand-written counterpart and the ensemble-prediction utilities.
"""

from repro.deepstan import clustering, datasets
from repro.deepstan.vae import VAE_DEEPSTAN_SOURCE, DeepStanVAE, HandWrittenVAE
from repro.deepstan.bayesian_nn import (
    BAYESIAN_MLP_SOURCE,
    DeepStanBayesianMLP,
    HandWrittenBayesianMLP,
)

__all__ = [
    "datasets",
    "clustering",
    "VAE_DEEPSTAN_SOURCE",
    "DeepStanVAE",
    "HandWrittenVAE",
    "BAYESIAN_MLP_SOURCE",
    "DeepStanBayesianMLP",
    "HandWrittenBayesianMLP",
]
