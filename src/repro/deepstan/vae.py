"""The Variational Auto-Encoder of §5.2 / Figure 8, in DeepStan and by hand.

Two implementations are provided for the RQ5 comparison:

* :class:`DeepStanVAE` — the model and guide written in DeepStan source (the
  ``networks`` block imports the encoder/decoder), compiled with the Pyro
  backend and trained with SVI;
* :class:`HandWrittenVAE` — the same model written directly against the
  runtime primitives (the role of the hand-written Pyro VAE in the paper).

Both share the same encoder/decoder architectures, training loop shape and
evaluation (KMeans over latent means, pairwise F1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff import nn, ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.core.compiler import CompiledModel, compile_model
from repro.deepstan.clustering import kmeans, pairwise_f1
from repro.infer.svi import SVI
from repro.ppl import distributions as dist
from repro.ppl import primitives
from repro.ppl.primitives import observe, sample

VAE_DEEPSTAN_SOURCE = """
networks {
  vector decoder(vector z);
  matrix encoder(vector x);
}
data {
  int nz;
  int nx;
  int<lower=0, upper=1> x[nx];
}
parameters {
  real z[nz];
}
model {
  real mu[nx];
  z ~ normal(0, 1);
  mu = decoder(z);
  x ~ bernoulli(mu);
}
guide {
  real encoded[2, nz];
  real mu_z[nz];
  real sigma_z[nz];
  encoded = encoder(x);
  mu_z = encoded[1];
  sigma_z = encoded[2];
  z ~ normal(mu_z, sigma_z);
}
"""


class Decoder(nn.Module):
    """Latent vector -> Bernoulli pixel probabilities."""

    def __init__(self, nz: int, nx: int, hidden: int = 32, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.l1 = nn.Linear(nz, hidden, rng=rng)
        self.l2 = nn.Linear(hidden, nx, rng=rng)

    def forward(self, z) -> Tensor:
        h = ops.tanh(self.l1(z))
        return ops.clip(ops.sigmoid(self.l2(h)), 1e-6, 1 - 1e-6)


class Encoder(nn.Module):
    """Image -> (mu_z, sigma_z), stacked as a 2 x nz matrix (Figure 8)."""

    def __init__(self, nx: int, nz: int, hidden: int = 32, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(1)
        self.l1 = nn.Linear(nx, hidden, rng=rng)
        self.mu_head = nn.Linear(hidden, nz, rng=rng)
        self.sigma_head = nn.Linear(hidden, nz, rng=rng)

    def forward(self, x) -> Tensor:
        h = ops.tanh(self.l1(x))
        mu = self.mu_head(h)
        sigma = ops.add(ops.softplus(self.sigma_head(h)), 1e-3)
        return ops.stack([mu, sigma])

    def latent_mean(self, x) -> np.ndarray:
        return np.asarray(self.forward(as_tensor(x)).data[0])


@dataclass
class VAEResult:
    f1: float
    precision: float
    recall: float
    losses: List[float] = field(default_factory=list)


class _VAEBase:
    """Shared training/evaluation loop for both VAE implementations."""

    def __init__(self, nz: int = 5, nx: int = 64, hidden: int = 32, seed: int = 0):
        self.nz = nz
        self.nx = nx
        rng = np.random.default_rng(seed)
        self.decoder = Decoder(nz, nx, hidden, rng=rng)
        self.encoder = Encoder(nx, nz, hidden, rng=rng)
        self.seed = seed
        self.losses: List[float] = []

    # subclasses provide model/guide callables bound to one image
    def _bound_model(self, image: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def _bound_guide(self, image: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError

    def train(self, images: np.ndarray, epochs: int = 2, learning_rate: float = 0.01,
              max_images: Optional[int] = None) -> "_VAEBase":
        """Run SVI over the images, one ELBO step per image per epoch."""
        primitives.clear_param_store()
        images = np.asarray(images, dtype=float)
        if max_images is not None:
            images = images[:max_images]
        extra = self.decoder.parameters() + self.encoder.parameters()
        svi = SVI(lambda img: self._bound_model(img)(),
                  lambda img: self._bound_guide(img)(),
                  learning_rate=learning_rate, seed=self.seed, extra_params=extra)
        for _ in range(epochs):
            for image in images:
                loss = svi.step(image)
                self.losses.append(loss)
        return self

    def latent_representation(self, images: np.ndarray) -> np.ndarray:
        """Encoder mean for each image (the learned latent representation)."""
        return np.array([self.encoder.latent_mean(img) for img in np.asarray(images, dtype=float)])

    def evaluate(self, images: np.ndarray, labels: np.ndarray, num_clusters: int = 10,
                 seed: int = 0) -> VAEResult:
        """Cluster the latent space with KMeans and compute pairwise F1 (RQ5)."""
        latents = self.latent_representation(images)
        clusters = kmeans(latents, num_clusters, seed=seed)
        scores = pairwise_f1(labels, clusters.assignments)
        return VAEResult(f1=scores["f1"], precision=scores["precision"],
                         recall=scores["recall"], losses=list(self.losses))


class HandWrittenVAE(_VAEBase):
    """The VAE written directly against the runtime (the paper's Pyro VAE)."""

    def _bound_model(self, image: np.ndarray):
        def model():
            z = sample("z", dist.Normal(np.zeros(self.nz), np.ones(self.nz)))
            mu = self.decoder(z)
            observe(dist.Bernoulli(mu), image, name="x")
            return z

        return model

    def _bound_guide(self, image: np.ndarray):
        def guide():
            encoded = self.encoder(as_tensor(image))
            mu_z = encoded[0]
            sigma_z = encoded[1]
            sample("z", dist.Normal(mu_z, sigma_z))

        return guide


class DeepStanVAE(_VAEBase):
    """The VAE written in DeepStan (Figure 8), compiled and trained with SVI."""

    def __init__(self, nz: int = 5, nx: int = 64, hidden: int = 32, seed: int = 0,
                 backend: str = "pyro"):
        super().__init__(nz=nz, nx=nx, hidden=hidden, seed=seed)
        self.compiled: CompiledModel = compile_model(VAE_DEEPSTAN_SOURCE, backend=backend,
                                                     scheme="comprehensive", name="vae")
        self.compiled.bind_networks({"decoder": self.decoder, "encoder": self.encoder})

    def _data(self, image: np.ndarray) -> Dict[str, np.ndarray]:
        return {"nz": self.nz, "nx": self.nx, "x": np.asarray(image, dtype=float)}

    def _bound_model(self, image: np.ndarray):
        return self.compiled.model_callable(self._data(image))

    def _bound_guide(self, image: np.ndarray):
        return self.compiled.guide_callable(self._data(image))
