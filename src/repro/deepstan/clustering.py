"""KMeans clustering and the pairwise-F1 metric used by RQ5.

The paper measures VAE quality by clustering the learned latent representation
with KMeans (k=10) and scoring the clustering against the digit labels with
pairwise F1: a *true positive* is a pair of images of the same digit assigned
to the same cluster.  scikit-learn is not available offline, so a compact
Lloyd's-algorithm KMeans is implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class KMeansResult:
    centers: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def kmeans(points: np.ndarray, k: int, num_iters: int = 100, seed: int = 0,
           num_restarts: int = 3) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation and restarts."""
    points = np.asarray(points, dtype=float)
    best: KMeansResult = None  # type: ignore[assignment]
    for restart in range(num_restarts):
        rng = np.random.default_rng(seed + restart)
        centers = _kmeanspp_init(points, k, rng)
        assignments = np.zeros(len(points), dtype=int)
        for iteration in range(num_iters):
            distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_assignments = distances.argmin(axis=1)
            if iteration > 0 and np.array_equal(new_assignments, assignments):
                break
            assignments = new_assignments
            for c in range(k):
                members = points[assignments == c]
                if len(members):
                    centers[c] = members.mean(axis=0)
        inertia = float(((points - centers[assignments]) ** 2).sum())
        result = KMeansResult(centers=centers, assignments=assignments,
                              inertia=inertia, iterations=iteration + 1)
        if best is None or result.inertia < best.inertia:
            best = result
    return best


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = len(points)
    centers = [points[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centers], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centers.append(points[rng.integers(n)])
            continue
        probs = distances / total
        centers.append(points[rng.choice(n, p=probs)])
    return np.array(centers, dtype=float)


def pairwise_f1(labels: np.ndarray, assignments: np.ndarray) -> Dict[str, float]:
    """Pairwise precision/recall/F1 of a clustering against true labels (RQ5)."""
    labels = np.asarray(labels)
    assignments = np.asarray(assignments)
    n = len(labels)
    same_label = labels[:, None] == labels[None, :]
    same_cluster = assignments[:, None] == assignments[None, :]
    upper = np.triu_indices(n, k=1)
    same_label = same_label[upper]
    same_cluster = same_cluster[upper]
    tp = float(np.sum(same_label & same_cluster))
    fp = float(np.sum(~same_label & same_cluster))
    fn = float(np.sum(same_label & ~same_cluster))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def prediction_accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy (used by the Bayesian-MLP experiment)."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    return float(np.mean(predicted == labels))


def prediction_agreement(predicted_a: np.ndarray, predicted_b: np.ndarray) -> float:
    """Agreement between two classifiers' predictions (RQ5's 95% agreement)."""
    return float(np.mean(np.asarray(predicted_a) == np.asarray(predicted_b)))
