"""Synthetic handwritten-digit dataset (MNIST substitute for the §6.2 experiments).

The RQ5 experiments only need a dataset whose classes (a) are separable enough
for a small MLP to reach >90% accuracy and (b) induce clusterable latent
representations for the VAE.  We generate one by drawing each class from a
fixed random prototype image blurred with pixel noise — the same recipe used
to sanity-check VAEs when MNIST is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class DigitsDataset:
    """A train/test split of synthetic digit images."""

    train_images: np.ndarray  # (n_train, side, side) in [0, 1]
    train_labels: np.ndarray  # (n_train,) in 1..num_classes (Stan convention)
    test_images: np.ndarray
    test_labels: np.ndarray
    side: int
    num_classes: int

    @property
    def num_pixels(self) -> int:
        return self.side * self.side

    def flat_train(self) -> np.ndarray:
        return self.train_images.reshape(len(self.train_images), -1)

    def flat_test(self) -> np.ndarray:
        return self.test_images.reshape(len(self.test_images), -1)


def make_digits(num_train: int = 200, num_test: int = 100, side: int = 8,
                num_classes: int = 10, noise: float = 0.15, seed: int = 0) -> DigitsDataset:
    """Generate the synthetic digits dataset.

    Each class ``c`` has a prototype: a random binary mask covering roughly a
    third of the image, smoothed with a box filter.  Samples are the prototype
    plus Gaussian pixel noise, clipped to ``[0, 1]``.
    """
    rng = np.random.default_rng(seed)
    prototypes = np.zeros((num_classes, side, side))
    for c in range(num_classes):
        mask = rng.uniform(size=(side, side)) < 0.35
        proto = mask.astype(float)
        # cheap 3x3 box blur to create smooth strokes
        padded = np.pad(proto, 1, mode="edge")
        blurred = np.zeros_like(proto)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                blurred += padded[1 + dx:1 + dx + side, 1 + dy:1 + dy + side]
        prototypes[c] = np.clip(blurred / 9.0 * 2.0, 0.0, 1.0)

    def sample_split(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=n)
        images = prototypes[labels] + noise * rng.standard_normal((n, side, side))
        return np.clip(images, 0.0, 1.0), labels + 1  # 1-based labels (Stan)

    train_images, train_labels = sample_split(num_train)
    test_images, test_labels = sample_split(num_test)
    return DigitsDataset(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        side=side,
        num_classes=num_classes,
    )


def make_binarized_digits(num_train: int = 200, num_test: int = 100, side: int = 8,
                          num_classes: int = 10, seed: int = 0) -> DigitsDataset:
    """Binarised variant used by the VAE (Bernoulli likelihood over pixels)."""
    data = make_digits(num_train, num_test, side=side, num_classes=num_classes, seed=seed)
    rng = np.random.default_rng(seed + 1)
    train = (rng.uniform(size=data.train_images.shape) < data.train_images).astype(float)
    test = (rng.uniform(size=data.test_images.shape) < data.test_images).astype(float)
    return DigitsDataset(
        train_images=train,
        train_labels=data.train_labels,
        test_images=test,
        test_labels=data.test_labels,
        side=data.side,
        num_classes=data.num_classes,
    )
