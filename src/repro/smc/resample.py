"""Resampling schemes for particle ensembles.

All three classic schemes live behind one interface: a *resampler* is a
callable ``(weights, n, rng) -> indices`` taking normalized weights (shape
``(m,)``, summing to 1), the number of offspring ``n`` to draw, and a
``numpy.random.Generator``; it returns an ``(n,)`` integer array of ancestor
indices.  Every scheme is unbiased — the expected offspring count of
particle ``i`` is ``n * weights[i]`` — so the weighted mean of any statistic
is preserved in expectation (tested statistically over many seeds in
``tests/smc/test_resamplers.py``):

* ``multinomial`` — n iid draws from the weight distribution; the textbook
  scheme, highest variance.
* ``stratified`` — one uniform per stratum ``[(k)/n, (k+1)/n)``; offspring
  counts vary by at most 1 from the stratified expectation.
* ``systematic`` — a *single* uniform shifted through all n strata; lowest
  variance, the SMC default.

Determinism: each scheme consumes a fixed number of variates from ``rng``
(``n`` for multinomial/stratified, 1 for systematic), so resampling is
bitwise-reproducible from the generator's bit-state — the property the
SMC checkpoint machinery relies on.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

Resampler = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


def _cumulative(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-d array")
    if not np.all(np.isfinite(weights)) or np.any(weights < 0):
        raise ValueError("weights must be finite and non-negative")
    cumulative = np.cumsum(weights)
    total = cumulative[-1]
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    cumulative = cumulative / total
    # Guard the final bin against accumulated rounding: a uniform draw of
    # 1 - eps must still map to the last particle, never past the array.
    cumulative[-1] = 1.0
    return cumulative


def multinomial_resample(weights: np.ndarray, n: int,
                         rng: np.random.Generator) -> np.ndarray:
    """``n`` iid ancestor draws from the categorical weight distribution."""
    cumulative = _cumulative(weights)
    positions = rng.random(int(n))
    return np.searchsorted(cumulative, positions, side="right").astype(np.intp)


def stratified_resample(weights: np.ndarray, n: int,
                        rng: np.random.Generator) -> np.ndarray:
    """One uniform per stratum ``[k/n, (k+1)/n)`` — variance-reduced."""
    n = int(n)
    cumulative = _cumulative(weights)
    positions = (np.arange(n) + rng.random(n)) / n
    return np.searchsorted(cumulative, positions, side="right").astype(np.intp)


def systematic_resample(weights: np.ndarray, n: int,
                        rng: np.random.Generator) -> np.ndarray:
    """A single uniform swept through all ``n`` strata — lowest variance."""
    n = int(n)
    cumulative = _cumulative(weights)
    positions = (np.arange(n) + rng.random()) / n
    return np.searchsorted(cumulative, positions, side="right").astype(np.intp)


RESAMPLERS: Dict[str, Resampler] = {
    "multinomial": multinomial_resample,
    "stratified": stratified_resample,
    "systematic": systematic_resample,
}


def get_resampler(name: str) -> Resampler:
    """Look up a resampling scheme by name (see :data:`RESAMPLERS`)."""
    try:
        return RESAMPLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown resampler {name!r}; expected one of "
            f"{sorted(RESAMPLERS)}") from None


def normalized_weights(log_weights: np.ndarray) -> np.ndarray:
    """Self-normalized weights from unnormalized log-weights."""
    log_weights = np.asarray(log_weights, dtype=float)
    shifted = log_weights - np.max(log_weights)
    weights = np.exp(shifted)
    return weights / np.sum(weights)


def ess(log_weights: np.ndarray) -> float:
    """Effective sample size ``(sum w)^2 / sum w^2`` of the log-weights.

    Computed in log space (``exp(2*lse(lw) - lse(2*lw))``) so extreme
    weights cannot overflow; ranges from 1 (one particle carries all the
    mass) to ``len(log_weights)`` (uniform weights).
    """
    log_weights = np.asarray(log_weights, dtype=float)
    shifted = log_weights - np.max(log_weights)
    lse1 = np.log(np.sum(np.exp(shifted)))
    lse2 = np.log(np.sum(np.exp(2.0 * shifted)))
    return float(np.exp(2.0 * lse1 - lse2))
