"""Particle ensemble state for the SMC engine.

A :class:`ParticleEnsemble` is the full mutable state of an SMC run:
particle positions on the unconstrained scale (``(n, dim)`` — the same
batched chain axis ``potential_and_grad_batched`` vectorizes over),
unnormalized log-weights, and the RNG streams.  Randomness is split the
same way the MCMC driver splits chains: one root ``SeedSequence(seed)``
spawns ``n + 1`` independent child streams — one per particle *slot* plus
a dedicated resampling stream — so particle ``i``'s stream depends only on
``(seed, i)`` and is independent of every ensemble operation.

Streams are bound to slot *indices*, not particle identities: resampling
permutes positions but never copies generators.  Copying them would hand
duplicated particles bitwise-identical randomness, making their subsequent
rejuvenation moves identical and silently collapsing ensemble diversity.

``snapshot()`` captures everything — positions, log-weights, and the exact
bit-state of every generator — and ``from_snapshot`` restores it, which is
what makes SMC checkpoints kill/resume *bitwise* (same contract as the
PR-3 MCMC checkpoints).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.infer.checkpoint import restore_rng, rng_state

from .resample import Resampler, ess, normalized_weights


class ParticleEnsemble:
    """Positions, log-weights, and RNG streams of one SMC particle system."""

    def __init__(self, positions: np.ndarray, log_weights: np.ndarray,
                 rngs: List[np.random.Generator],
                 resample_rng: np.random.Generator):
        positions = np.asarray(positions, dtype=float)
        log_weights = np.asarray(log_weights, dtype=float)
        if positions.ndim != 2:
            raise ValueError("positions must have shape (num_particles, dim)")
        if log_weights.shape != (positions.shape[0],):
            raise ValueError("log_weights must have shape (num_particles,)")
        if len(rngs) != positions.shape[0]:
            raise ValueError("need exactly one RNG stream per particle slot")
        self.positions = positions
        self.log_weights = log_weights
        self.rngs = list(rngs)
        self.resample_rng = resample_rng

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, num_particles: int, dim: int,
                 seed: int) -> "ParticleEnsemble":
        """Uniform-weight ensemble at the origin with spawned RNG streams."""
        num_particles = int(num_particles)
        if num_particles < 2:
            raise ValueError("an ensemble needs at least 2 particles")
        streams = np.random.SeedSequence(seed).spawn(num_particles + 1)
        rngs = [np.random.default_rng(s) for s in streams[:num_particles]]
        resample_rng = np.random.default_rng(streams[num_particles])
        return cls(positions=np.zeros((num_particles, int(dim))),
                   log_weights=np.zeros(num_particles),
                   rngs=rngs, resample_rng=resample_rng)

    # ------------------------------------------------------------------
    # weight bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_particles(self) -> int:
        return self.positions.shape[0]

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def weights(self) -> np.ndarray:
        """Self-normalized weights."""
        return normalized_weights(self.log_weights)

    def ess(self) -> float:
        """Effective sample size of the current weights (1 .. n)."""
        return ess(self.log_weights)

    def normalized_ess(self) -> float:
        """ESS as a fraction of the particle count (1/n .. 1)."""
        return self.ess() / self.num_particles

    def weighted_mean(self) -> np.ndarray:
        return np.sum(self.weights()[:, None] * self.positions, axis=0)

    def weighted_variance(self, floor: float = 1e-6) -> np.ndarray:
        """Per-dimension weighted ensemble variance (floored).

        The rejuvenation kernels use this as their inverse mass matrix —
        the ensemble's own spread *is* the scale estimate warmup adaptation
        would otherwise have to learn.
        """
        mean = self.weighted_mean()
        centered = self.positions - mean
        var = np.sum(self.weights()[:, None] * centered ** 2, axis=0)
        return np.maximum(var, floor)

    # ------------------------------------------------------------------
    # resampling
    # ------------------------------------------------------------------
    def resample(self, resampler: Resampler) -> np.ndarray:
        """Replace the ensemble by ``n`` ancestors drawn by ``resampler``.

        Positions are gathered by ancestor index, weights reset to uniform;
        RNG streams stay bound to their slots (see module docstring).
        Returns the ancestor index array.
        """
        indices = resampler(self.weights(), self.num_particles,
                            self.resample_rng)
        self.positions = self.positions[indices].copy()
        self.log_weights = np.zeros(self.num_particles)
        return indices

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything needed to restore this ensemble bitwise."""
        return {
            "positions": self.positions.copy(),
            "log_weights": self.log_weights.copy(),
            "rng_states": [rng_state(rng) for rng in self.rngs],
            "resample_rng_state": rng_state(self.resample_rng),
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]) -> "ParticleEnsemble":
        rngs = [restore_rng(state) for state in snapshot["rng_states"]]
        return cls(positions=np.array(snapshot["positions"], dtype=float),
                   log_weights=np.array(snapshot["log_weights"], dtype=float),
                   rngs=rngs,
                   resample_rng=restore_rng(snapshot["resample_rng_state"]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ParticleEnsemble(n={self.num_particles}, dim={self.dim}, "
                f"ess={self.ess():.1f})")


def checkpoint_rngs(rngs: List[np.random.Generator]) -> List[Optional[dict]]:
    """Bit-states for a list of generators (checkpoint helper)."""
    return [rng_state(rng) for rng in rngs]
