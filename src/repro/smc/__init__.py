"""Streaming Sequential Monte Carlo engine.

Particle ensembles on the batched ``(C, dim)`` chain axis, data-tempered
updates to absorb new observations without refitting, and resample-move
rejuvenation via the existing generator-protocol HMC/NUTS kernels.  Entry
point: ``compile_model(...).condition(data).fit("smc")`` returns a
:class:`StreamingFit`; ``fit.extend(new_data)`` assimilates a grown
dataset and emits a fresh :class:`~repro.infer.Posterior`.
"""

from .ensemble import ParticleEnsemble
from .fit import SMC_CHECKPOINT_FORMAT, SMCUpdate, StreamingFit
from .resample import (
    RESAMPLERS,
    ess,
    get_resampler,
    multinomial_resample,
    normalized_weights,
    stratified_resample,
    systematic_resample,
)
from .tempering import GaussianReference, TemperedPotential, next_beta

__all__ = [
    "ParticleEnsemble",
    "SMC_CHECKPOINT_FORMAT",
    "SMCUpdate",
    "StreamingFit",
    "RESAMPLERS",
    "ess",
    "get_resampler",
    "multinomial_resample",
    "normalized_weights",
    "stratified_resample",
    "systematic_resample",
    "GaussianReference",
    "TemperedPotential",
    "next_beta",
]
