"""Tempered bridges between potentials and the adaptive ladder.

Data tempering moves a particle ensemble from an easy distribution
``pi_0 \\propto exp(-U_0)`` to the target ``pi_1 \\propto exp(-U_1)``
through the geometric bridge

    ``U_beta(z) = (1 - beta) * U_0(z) + beta * U_1(z)``,   beta: 0 -> 1.

Stepping ``beta -> beta'`` reweights each particle by

    ``delta_logw = (beta' - beta) * (U_0(z) - U_1(z))``

(the ratio ``pi_beta' / pi_beta`` up to a constant), so one value-only
batched evaluation of each endpoint prices the whole ensemble.

:class:`TemperedPotential` exposes the bridge behind the same evaluation
surface the HMC/NUTS kernels consume (``dim``, ``potential_and_grad``,
``potential_and_grad_batched``), combining the endpoints with identical
elementwise arithmetic in the scalar and batched paths — since each
endpoint's batched evaluation is already bitwise-equal to its sequential
oracle (or demoted to the row loop), the bridge inherits the
sequential/vectorized bitwise contract for free.

:class:`GaussianReference` is the analytic ``U_0`` used to *initialize* a
streaming fit: a diagonal Gaussian with closed-form density and gradient.
The ensemble is sampled directly from it, so the ``beta = 0`` weights are
exactly uniform and the tempering ladder itself performs the importance
correction from the (prior- or guide-seeded) proposal to the posterior.

:func:`next_beta` picks the ladder rungs adaptively: bisection on the
candidate ESS chooses the largest ``beta'`` that keeps the reweighted ESS
at the target fraction — pure deterministic arithmetic on the ensemble
state, so the ladder checkpoints/resumes bitwise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .resample import ess


class GaussianReference:
    """Diagonal-Gaussian reference potential ``U(z) = -log N(z; loc, scale)``."""

    def __init__(self, loc: np.ndarray, scale: np.ndarray):
        self.loc = np.asarray(loc, dtype=float).reshape(-1)
        self.scale = np.asarray(scale, dtype=float).reshape(-1)
        if self.loc.shape != self.scale.shape:
            raise ValueError("loc and scale must have the same shape")
        if not np.all(self.scale > 0):
            raise ValueError("scale must be strictly positive")
        self.dim = self.loc.size
        self._log_norm = float(0.5 * self.dim * np.log(2.0 * np.pi)
                               + np.sum(np.log(self.scale)))

    @classmethod
    def from_draws(cls, draws: np.ndarray, inflation: float = 1.5,
                   scale_floor: float = 1e-2) -> "GaussianReference":
        """Moment-match a reference to ``(S, dim)`` unconstrained draws.

        ``inflation`` widens the matched scale so the reference over-covers
        the proposal (a too-narrow ``U_0`` starves the bridge of tail mass);
        ``scale_floor`` guards degenerate dimensions (e.g. a delta-like
        guide) against zero scale.
        """
        draws = np.asarray(draws, dtype=float)
        if draws.ndim != 2 or draws.shape[0] < 2:
            raise ValueError("need at least 2 draws of shape (S, dim)")
        loc = np.mean(draws, axis=0)
        scale = np.maximum(np.std(draws, axis=0) * float(inflation),
                           scale_floor)
        return cls(loc, scale)

    @classmethod
    def from_moments(cls, loc: np.ndarray, scale: np.ndarray,
                     inflation: float = 1.5,
                     scale_floor: float = 1e-2) -> "GaussianReference":
        scale = np.maximum(np.asarray(scale, dtype=float) * float(inflation),
                           scale_floor)
        return cls(loc, scale)

    # ------------------------------------------------------------------
    # evaluation (same surface as Potential, diagonal-Gaussian closed form)
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.loc + self.scale * rng.standard_normal((int(n), self.dim))

    def _batched(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        resid = (z - self.loc) / self.scale
        values = 0.5 * np.sum(resid * resid, axis=-1) + self._log_norm
        grads = resid / self.scale
        return values, grads

    def potential_and_grad_batched(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        z = np.asarray(z, dtype=float)
        return self._batched(z)

    def potential_batched(self, z: np.ndarray) -> np.ndarray:
        return self._batched(np.asarray(z, dtype=float))[0]

    def potential_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        # Route through the batched arithmetic so scalar and batched
        # evaluations are bitwise-identical by construction.
        values, grads = self._batched(np.asarray(z, dtype=float)[None, :])
        return float(values[0]), grads[0]

    def snapshot(self) -> dict:
        return {"loc": self.loc.copy(), "scale": self.scale.copy()}

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "GaussianReference":
        return cls(snapshot["loc"], snapshot["scale"])


class TemperedPotential:
    """The geometric bridge ``(1 - beta) * U_base + beta * U_target``.

    Quacks like a :class:`~repro.infer.potential.Potential` for everything
    the HMC/NUTS kernels touch.  ``beta`` is a plain mutable attribute so
    one bridge object serves the whole ladder.  At the endpoints only the
    live term is evaluated — rejuvenation at ``beta = 1`` prices exactly
    one potential, not two.
    """

    def __init__(self, base, target, beta: float = 0.0):
        if base.dim != target.dim:
            raise ValueError(
                f"bridge endpoints disagree on dimension: base.dim="
                f"{base.dim}, target.dim={target.dim}")
        self.base = base
        self.target = target
        self.beta = float(beta)
        self.dim = target.dim

    def potential_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        beta = self.beta
        if beta == 0.0:
            return self.base.potential_and_grad(z)
        if beta == 1.0:
            return self.target.potential_and_grad(z)
        u0, g0 = self.base.potential_and_grad(z)
        u1, g1 = self.target.potential_and_grad(z)
        return (1.0 - beta) * u0 + beta * u1, (1.0 - beta) * g0 + beta * g1

    def potential_and_grad_batched(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        beta = self.beta
        if beta == 0.0:
            return self.base.potential_and_grad_batched(z)
        if beta == 1.0:
            return self.target.potential_and_grad_batched(z)
        u0, g0 = self.base.potential_and_grad_batched(z)
        u1, g1 = self.target.potential_and_grad_batched(z)
        return (1.0 - beta) * u0 + beta * u1, (1.0 - beta) * g0 + beta * g1

    def potential_batched(self, z: np.ndarray) -> np.ndarray:
        beta = self.beta
        if beta == 0.0:
            return self.base.potential_batched(z)
        if beta == 1.0:
            return self.target.potential_batched(z)
        u0 = self.base.potential_batched(z)
        u1 = self.target.potential_batched(z)
        return (1.0 - beta) * u0 + beta * u1


def next_beta(log_weights: np.ndarray, delta: np.ndarray, beta: float,
              target_ess: float, min_step: float = 1e-4,
              iters: int = 60) -> float:
    """Largest ``beta' in (beta, 1]`` keeping the reweighted ESS at target.

    ``delta = U_0(z) - U_1(z)`` per particle; the candidate log-weights at
    ``beta'`` are ``log_weights + (beta' - beta) * delta``.  ESS is
    monotone non-increasing in ``beta'`` for the geometric bridge, so
    bisection finds the crossing; if even the full jump to 1 keeps ESS at
    or above target, the ladder finishes in one step.  ``min_step``
    guarantees forward progress when the ensemble is so mismatched that
    any step drops below target.  Pure arithmetic — no randomness — so the
    adaptive ladder is checkpoint-stable.
    """
    log_weights = np.asarray(log_weights, dtype=float)
    delta = np.asarray(delta, dtype=float)
    beta = float(beta)
    if not 0.0 <= beta < 1.0:
        raise ValueError(f"beta must be in [0, 1), got {beta}")

    def ess_at(candidate: float) -> float:
        return ess(log_weights + (candidate - beta) * delta)

    if ess_at(1.0) >= target_ess:
        return 1.0
    lo, hi = beta, 1.0
    for _ in range(int(iters)):
        mid = 0.5 * (lo + hi)
        if ess_at(mid) >= target_ess:
            lo = mid
        else:
            hi = mid
    return min(1.0, max(lo, beta + float(min_step)))
