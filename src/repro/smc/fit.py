"""The streaming SMC engine: ``fit("smc")`` + ``extend(new_data)``.

:class:`StreamingFit` maintains a :class:`~repro.smc.ensemble.ParticleEnsemble`
whose particles ride the batched ``(C, dim)`` evaluation axis, and moves it
between posteriors with data-tempered :class:`SMCUpdate` steps:

1. **Initialize** (``fit("smc")``): seed the ensemble from an analytic
   diagonal-Gaussian reference — moment-matched to *prior* draws
   (``init="prior"``) or to a *guide* (``init="guide"``: an
   :class:`~repro.guides.base.AutoGuide`, a PR-8
   :class:`~repro.serve.AmortizedModel` artifact, or an autoguide name) —
   then temper from the reference to the conditioned posterior.  Sampling
   the ensemble *from* the reference makes the ``beta = 0`` weights exactly
   uniform; the tempering ladder is the importance correction.
2. **Assimilate** (``extend(new_data)``): temper from the potential over
   the previous data to the potential over the updated data, reusing the
   fitted ensemble instead of refitting from scratch.

Each :class:`SMCUpdate` runs the adaptive ladder: reweight (one value-only
batched evaluation of each bridge endpoint), pick the next rung by ESS
bisection (``smc.temper`` span), resample when the ESS decays
(``smc.resample`` span), and rejuvenate with generator-driven HMC/NUTS
transitions over the tempered potential — the same PR-1 generator
protocol, so moves run batched under ``chain_method="vectorized"`` and are
bitwise-identical to the sequential driver.  A ``Posterior`` is emitted
after every assimilation, and the full engine state (ensemble, every RNG
bit-state, ladder position, move tuning) checkpoints through the PR-3
machinery so long-lived streaming fits kill/resume bitwise.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.infer.checkpoint import CHECKPOINT_VERSION, CheckpointWriter
from repro.infer.results import Posterior

from .ensemble import ParticleEnsemble
from .resample import get_resampler
from .tempering import GaussianReference, TemperedPotential, next_beta

SMC_CHECKPOINT_FORMAT = "repro-smc-checkpoint"

#: domain tags for the dedicated RNG streams (posterior materialization and
#: reference construction) — derived from the fit seed, never touching the
#: ensemble's per-particle streams.
_EMIT_TAG = 0x534D4350   # "SMCP"
_INIT_TAG = 0x534D4349   # "SMCI"

#: constructor knobs carried verbatim in the checkpoint config.
_CONFIG_KEYS = ("num_particles", "seed", "init", "resampler", "ess_threshold",
                "num_moves", "move_num_steps", "move_kernel", "max_tree_depth",
                "chain_method", "init_draws", "init_inflation", "target_accept")


class SMCUpdate:
    """One data-tempering assimilation: bridge ``base -> target``.

    Owns the adaptive ladder loop over a shared ensemble; the
    :class:`StreamingFit` front constructs one per ``fit("smc")`` /
    ``extend()`` call and drives it to ``beta = 1``.  ``beta`` and the
    ladder trace are exposed so the front can checkpoint mid-bridge and a
    resumed update continues from the recorded rung.
    """

    def __init__(self, fit: "StreamingFit", base, target,
                 beta: float = 0.0, ladder: Optional[List[dict]] = None):
        self.fit = fit
        self.base = base
        self.target = target
        self.bridge = TemperedPotential(base, target, beta=beta)
        self.beta = float(beta)
        self.ladder: List[dict] = list(ladder or [])

    @property
    def done(self) -> bool:
        return self.beta >= 1.0

    def run(self) -> List[dict]:
        """Advance the ladder to ``beta = 1``; returns the rung trace."""
        fit = self.fit
        ensemble = fit.ensemble
        n = ensemble.num_particles
        target_ess = fit.ess_threshold * n
        telemetry = fit.telemetry
        while self.beta < 1.0:
            with telemetry.span("smc.step", assimilation=fit.assimilations,
                                step=len(self.ladder), beta=self.beta) as span:
                u0 = self.base.potential_batched(ensemble.positions)
                u1 = self.target.potential_batched(ensemble.positions)
                delta = u0 - u1
                with telemetry.span("smc.temper", beta=self.beta):
                    beta_new = next_beta(ensemble.log_weights, delta,
                                         self.beta, target_ess)
                ensemble.log_weights = ensemble.log_weights \
                    + (beta_new - self.beta) * delta
                self.beta = beta_new
                self.bridge.beta = beta_new
                ess_now = ensemble.ess()
                rung = {"beta": beta_new, "ess": ess_now,
                        "resampled": False, "accept_mean": None}
                # Every intermediate rung resamples and moves (the bisection
                # pins the post-update ESS at the threshold, so skipping
                # would let weight degeneracy compound); the final rung only
                # rejuvenates if the last jump overshot the ESS budget.
                if beta_new < 1.0 or ess_now < target_ess:
                    with telemetry.span("smc.resample",
                                        scheme=fit.resampler_name,
                                        ess=ess_now):
                        ensemble.resample(fit.resampler_fn)
                    fit.metrics.inc("smc.resamples")
                    rung["resampled"] = True
                    rung["accept_mean"] = fit._rejuvenate(self.bridge)
                fit.metrics.inc("smc.steps")
                fit.metrics.set_info("smc.beta", round(beta_new, 6))
                fit.metrics.set_info("smc.ess", round(ensemble.ess(), 2))
                span.set(beta_next=beta_new, ess=ess_now,
                         resampled=rung["resampled"])
                self.ladder.append(rung)
                fit.steps_total += 1
                fit._maybe_checkpoint()
        return self.ladder


class StreamingFit:
    """The ``fit("smc")`` engine and its ``extend()`` streaming front.

    Satisfies the :class:`~repro.infer.results.FitResult` protocol
    (``.posterior`` + ``.diagnostics()``).  ``posteriors`` keeps the full
    per-assimilation history; ``posterior`` is the latest.
    """

    def __init__(self, conditioned, *, num_particles: int = 256,
                 seed: int = 0, init: str = "prior", guide: Any = None,
                 resampler: str = "systematic", ess_threshold: float = 0.5,
                 num_moves: int = 2, move_num_steps: int = 5,
                 move_kernel: str = "hmc", max_tree_depth: int = 6,
                 target_accept: float = 0.8,
                 chain_method: Optional[str] = None,
                 init_draws: int = 128, init_inflation: float = 1.5,
                 engine: Any = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_keep: bool = False):
        if not 0.0 < ess_threshold <= 1.0:
            raise ValueError("ess_threshold must be in (0, 1]")
        if move_kernel not in ("hmc", "nuts"):
            raise ValueError(f"move_kernel must be 'hmc' or 'nuts', "
                             f"got {move_kernel!r}")
        if chain_method not in (None, "sequential", "vectorized"):
            raise ValueError(f"unknown chain_method {chain_method!r}")
        self.conditioned = conditioned
        self.num_particles = int(num_particles)
        self.seed = int(seed)
        self.init = init
        self.guide = guide
        self.resampler_name = resampler
        self.resampler_fn = get_resampler(resampler)
        self.ess_threshold = float(ess_threshold)
        self.num_moves = int(num_moves)
        self.move_num_steps = int(move_num_steps)
        self.move_kernel = move_kernel
        self.max_tree_depth = int(max_tree_depth)
        self.target_accept = float(target_accept)
        self.chain_method = chain_method or "vectorized"
        self.init_draws = int(init_draws)
        self.init_inflation = float(init_inflation)
        self.engine = engine
        self.engine_config = conditioned.compiled.resolved_engine(engine)

        # The batched fast/loop classification is structural — how the model
        # graph vectorizes over the particle axis, not the chunk length — so
        # every potential in the stream (the initial target, each extend()'s
        # target, resumed bases) shares one tier table: only the first
        # assimilation pays the probe validation, and extend() goes straight
        # to the validated tier.  The runtime demote guard still protects
        # each potential individually.
        self._batched_tiers: Dict[int, str] = {}
        self.target = conditioned.potential(self.seed, engine=engine)
        self.target.share_batched_classification(self._batched_tiers)
        self.telemetry = self.target.telemetry
        from repro.obs import MetricsRegistry
        self.metrics = self.telemetry.attach_registry("smc", MetricsRegistry())

        self.ensemble: Optional[ParticleEnsemble] = None
        self.posteriors: List[Posterior] = []
        self.ladders: List[List[dict]] = []
        self.assimilations = 0
        self.steps_total = 0
        self.emit_count = 0
        self.move_step_size = 0.25
        self.runtime_seconds = 0.0
        self._last_accept: Optional[np.ndarray] = None
        self._divergences = 0
        self._update: Optional[SMCUpdate] = None
        self._base_spec: Optional[dict] = None
        self.metadata: Dict[str, Any] = conditioned._metadata(
            "smc", self.seed, self.engine_config)

        self.checkpoint_every = checkpoint_every
        self._writer = CheckpointWriter(checkpoint_path, keep=checkpoint_keep) \
            if checkpoint_path and checkpoint_every else None

    # ------------------------------------------------------------------
    # initialization (fit("smc"))
    # ------------------------------------------------------------------
    def run(self) -> "StreamingFit":
        """Seed the ensemble from the reference and temper to the posterior."""
        if self.ensemble is not None:
            raise RuntimeError("this StreamingFit already ran; use extend()")
        start = time.perf_counter()
        with self.telemetry.span("smc.run", phase="init", init=self.init,
                                 num_particles=self.num_particles):
            reference = self._build_reference()
            self.ensemble = ParticleEnsemble.allocate(
                self.num_particles, self.target.dim, self.seed)
            # Each particle draws its start from its own slot stream, so the
            # initial state depends only on (seed, slot) — and sampling from
            # the reference makes the beta=0 weights exactly uniform.
            for i in range(self.num_particles):
                self.ensemble.positions[i] = reference.sample(
                    self.ensemble.rngs[i], 1)[0]
            self._base_spec = {"kind": "reference", **reference.snapshot()}
            self._last_accept = None
            self._divergences = 0
            self._update = SMCUpdate(self, reference, self.target)
            self._update.run()
            self._finish_assimilation()
        self.runtime_seconds += time.perf_counter() - start
        return self

    def _build_reference(self) -> GaussianReference:
        if self.init == "prior":
            draws = self._prior_unconstrained_draws()
            return GaussianReference.from_draws(
                draws, inflation=self.init_inflation)
        if self.init == "guide":
            return self._guide_reference()
        raise ValueError(f"unknown init {self.init!r}; "
                         "expected 'prior' or 'guide'")

    def _prior_unconstrained_draws(self) -> np.ndarray:
        """Prior draws packed to the unconstrained scale, ``(S, dim)``."""
        pot = self.target
        draws = self.conditioned.sample_prior(num_draws=self.init_draws,
                                              seed=self.seed)
        packed = np.zeros((self.init_draws, pot.dim))
        for name, info in pot.sites.items():
            values = draws.get(name)
            if values is None:
                continue
            for s in range(self.init_draws):
                unc = info.transform.inv(values[s])
                unc = np.asarray(getattr(unc, "data", unc), dtype=float)
                packed[s, info.offset:info.offset + info.size] = unc.reshape(-1)
        return packed

    def _guide_reference(self) -> GaussianReference:
        guide = self.guide
        if guide is None:
            raise ValueError('init="guide" needs guide=<AutoGuide instance, '
                             "AmortizedModel, or autoguide name>")
        # A PR-8 amortized artifact predicts the guide moments for *this*
        # dataset directly from its observed-vector features — the warm
        # start the serving layer already computes per query.
        if hasattr(guide, "moments_for") and hasattr(guide, "features_for"):
            features = np.asarray(guide.features_for(self.target), dtype=float)
            if features.ndim == 1:
                features = features[None, :]
            loc, scale = guide.moments_for(features)
            return GaussianReference.from_moments(
                np.asarray(loc)[0], np.asarray(scale)[0],
                inflation=self.init_inflation)
        if isinstance(guide, str):
            from repro.guides import get_autoguide
            guide = get_autoguide(guide)
        if getattr(guide, "dim", None) != self.target.dim:
            guide.setup(self.target)
        rng = np.random.default_rng([self.seed, _INIT_TAG])
        draws = np.asarray(guide.sample_unconstrained(
            rng, max(self.init_draws, 64)), dtype=float)
        return GaussianReference.from_draws(draws,
                                            inflation=self.init_inflation)

    # ------------------------------------------------------------------
    # streaming (extend)
    # ------------------------------------------------------------------
    def extend(self, data: Dict[str, Any]) -> Posterior:
        """Absorb ``data`` (the *full* updated dataset) into the posterior.

        Tempers from the potential over the previous data to the potential
        over ``data`` — the fitted ensemble is the bridge's starting
        distribution, so no refit from scratch.  The model's unconstrained
        dimension must not change (true for growing-observation streams;
        enumerated discrete states are marginalized out and never enter the
        particle state).  Returns the newly emitted :class:`Posterior`.
        """
        if self.ensemble is None:
            raise RuntimeError("run() this fit before extending it")
        start = time.perf_counter()
        previous = self.conditioned
        base = self.target
        new_conditioned = previous.compiled.condition(dict(data))
        new_target = new_conditioned.potential(self.seed, engine=self.engine)
        if new_target.dim != base.dim:
            raise ValueError(
                f"extend() changed the unconstrained dimension "
                f"({base.dim} -> {new_target.dim}); streaming SMC requires "
                "a fixed parameter space")
        new_target.share_batched_classification(self._batched_tiers)
        with self.telemetry.span("smc.run", phase="extend",
                                 assimilation=self.assimilations):
            self.conditioned = new_conditioned
            self.target = new_target
            self._base_spec = {"kind": "data",
                               "data": _snapshot_data(previous.data)}
            self._last_accept = None
            self._divergences = 0
            self._update = SMCUpdate(self, base, new_target)
            self._update.run()
            posterior = self._finish_assimilation()
        self.runtime_seconds += time.perf_counter() - start
        return posterior

    # ------------------------------------------------------------------
    # rejuvenation (resample-move)
    # ------------------------------------------------------------------
    def _make_move_kernel(self, bridge: TemperedPotential):
        from repro.infer.hmc import HMC
        from repro.infer.nuts import NUTS

        if self.move_kernel == "nuts":
            return NUTS(bridge, step_size=self.move_step_size,
                        max_tree_depth=self.max_tree_depth,
                        adapt_step_size=False, adapt_mass_matrix=False,
                        target_accept=self.target_accept)
        return HMC(bridge, step_size=self.move_step_size,
                   num_steps=self.move_num_steps,
                   adapt_step_size=False, adapt_mass_matrix=False,
                   target_accept=self.target_accept)

    def _rejuvenate(self, bridge: TemperedPotential) -> float:
        """``num_moves`` invariant transitions per particle at the current rung.

        The inverse mass matrix is the ensemble's own (post-resample)
        variance; the step size is tuned *between* rejuvenations from the
        realized acceptance — a deterministic function of the ensemble
        history, so checkpoints restore the tuning state exactly.
        """
        kernel = self._make_move_kernel(bridge)
        inv_mass = self.ensemble.weighted_variance()
        accept = np.zeros(self.ensemble.num_particles)
        for _ in range(self.num_moves):
            infos = self._move_round(kernel, self.move_step_size, inv_mass)
            accept = np.array([info["accept_prob"] for info in infos])
            self.metrics.inc("smc.moves")
        self._divergences = int(kernel.divergences)
        self._last_accept = accept
        mean_accept = float(np.mean(accept))
        self.metrics.set_info("smc.accept_mean", round(mean_accept, 4))
        if mean_accept < 0.4:
            self.move_step_size = max(self.move_step_size * 0.5, 1e-5)
        elif mean_accept > 0.85:
            self.move_step_size = min(self.move_step_size * 1.4, 2.0)
        return mean_accept

    def _move_round(self, kernel, step_size: float,
                    inv_mass: np.ndarray) -> List[dict]:
        """One transition per particle via the PR-1 generator protocol.

        ``sequential`` answers each generator's evaluation requests with the
        scalar path; ``vectorized`` stacks every outstanding request into a
        single ``potential_and_grad_batched`` call.  The bridge inherits the
        endpoints' batched-vs-sequential bitwise contract, so both drivers
        produce identical ensembles.
        """
        ensemble = self.ensemble
        n = ensemble.num_particles
        new_positions = np.empty_like(ensemble.positions)
        infos: List[Optional[dict]] = [None] * n
        if self.chain_method == "sequential":
            for i in range(n):
                gen = kernel._transition_gen(ensemble.positions[i].copy(),
                                             ensemble.rngs[i], step_size,
                                             inv_mass)
                response = None
                while True:
                    try:
                        request = gen.send(response)
                    except StopIteration as stop:
                        new_positions[i], infos[i] = stop.value
                        break
                    response = kernel.potential.potential_and_grad(request)
        else:
            gens = [kernel._transition_gen(ensemble.positions[i].copy(),
                                           ensemble.rngs[i], step_size,
                                           inv_mass) for i in range(n)]
            responses: List[Any] = [None] * n
            active = list(range(n))
            while active:
                requests = []
                requesters = []
                for i in active:
                    try:
                        request = gens[i].send(responses[i])
                    except StopIteration as stop:
                        new_positions[i], infos[i] = stop.value
                        continue
                    requests.append(request)
                    requesters.append(i)
                if requesters:
                    if self.telemetry.enabled:
                        self.telemetry.record_batch(len(requests), n)
                    values, grads = kernel.potential.potential_and_grad_batched(
                        np.stack(requests))
                    for j, i in enumerate(requesters):
                        responses[i] = (values[j], grads[j])
                active = requesters
        ensemble.positions = new_positions
        return infos  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # posterior emission
    # ------------------------------------------------------------------
    def _finish_assimilation(self) -> Posterior:
        ladder = self._update.ladder if self._update is not None else []
        self.ladders.append(ladder)
        self.assimilations += 1
        self._update = None
        self._base_spec = None
        posterior = self._emit_posterior(ladder)
        self.posteriors.append(posterior)
        self._maybe_checkpoint(force_boundary=True)
        return posterior

    def _emit_posterior(self, ladder: List[dict]) -> Posterior:
        """Materialize the weighted ensemble as an equal-weight Posterior.

        Importance-resamples the particles with a dedicated per-emission RNG
        (derived from ``(seed, tag, emit_count)``), so building a posterior
        never perturbs the engine streams and every emission is independent
        of when it happens.
        """
        ensemble = self.ensemble
        n = ensemble.num_particles
        rng = np.random.default_rng([self.seed, _EMIT_TAG, self.emit_count])
        weights = ensemble.weights()
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0
        indices = np.searchsorted(cumulative, rng.random(n), side="right")
        z = ensemble.positions[indices]
        constrained = self.target.constrained_dict_batched(z)
        draws = {name: value[None, ...] for name, value in constrained.items()}
        log_norm = ensemble.log_weights \
            - np.log(np.sum(np.exp(ensemble.log_weights
                                   - np.max(ensemble.log_weights)))) \
            - np.max(ensemble.log_weights)
        stats: Dict[str, np.ndarray] = {"log_weight": log_norm[indices][None]}
        if self._last_accept is not None:
            stats["accept_prob"] = self._last_accept[indices][None]
        metadata = dict(self.metadata)
        metadata.update(
            num_particles=n,
            assimilation=self.assimilations,
            tempering_steps=len(ladder),
            beta_ladder=[round(r["beta"], 6) for r in ladder],
            ess=ensemble.ess(),
            normalized_ess=ensemble.normalized_ess(),
            resampler=self.resampler_name,
            init=self.init,
            chain_method=self.chain_method,
            divergences=self._divergences,
        )
        self.emit_count += 1
        return Posterior(draws=draws, stats=stats, unconstrained=z[None],
                         metadata=metadata)

    # ------------------------------------------------------------------
    # FitResult protocol
    # ------------------------------------------------------------------
    @property
    def posterior(self) -> Posterior:
        if not self.posteriors:
            raise RuntimeError("no posterior emitted yet; run() the fit first")
        return self.posteriors[-1]

    def diagnostics(self) -> Dict[str, Any]:
        ensemble = self.ensemble
        return {
            "assimilations": self.assimilations,
            "tempering_steps": self.steps_total,
            "ess": ensemble.ess() if ensemble is not None else None,
            "normalized_ess": (ensemble.normalized_ess()
                               if ensemble is not None else None),
            "beta_ladders": [[round(r["beta"], 6) for r in ladder]
                             for ladder in self.ladders],
            "move_step_size": self.move_step_size,
            "divergences": self._divergences,
            "posteriors_emitted": len(self.posteriors),
            "runtime_seconds": self.runtime_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StreamingFit(particles={self.num_particles}, "
                f"assimilations={self.assimilations}, "
                f"posteriors={len(self.posteriors)})")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, force_boundary: bool = False) -> None:
        if self._writer is None:
            return
        if force_boundary or (self.checkpoint_every
                              and self.steps_total % self.checkpoint_every == 0):
            self._writer.write(self.checkpoint_payload())

    def checkpoint_payload(self) -> Dict[str, Any]:
        """The full engine state (PR-3 checkpoint protocol, SMC format)."""
        stage: Dict[str, Any] = {
            "assimilations": self.assimilations,
            "steps_total": self.steps_total,
            "emit_count": self.emit_count,
            "move_step_size": self.move_step_size,
            "divergences": self._divergences,
            "last_accept": (None if self._last_accept is None
                            else self._last_accept.copy()),
            "runtime_so_far": self.runtime_seconds,
            "data": _snapshot_data(self.conditioned.data),
            "base": self._base_spec,
            "beta": self._update.beta if self._update is not None else None,
            "ladder": (list(self._update.ladder)
                       if self._update is not None else None),
        }
        return {
            "format": SMC_CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "config": {key: getattr(self, _ATTR_FOR_KEY.get(key, key))
                       for key in _CONFIG_KEYS},
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_keep": (self._writer.keep
                                if self._writer is not None else False),
            "stage": stage,
            "ensemble": self.ensemble.snapshot(),
            "history": [_posterior_state(p) for p in self.posteriors],
            "ladders": [list(ladder) for ladder in self.ladders],
        }

    @classmethod
    def resume_payload(cls, payload: Dict[str, Any], conditioned,
                       default_path: Optional[str] = None,
                       checkpoint_every: Optional[int] = None,
                       checkpoint_path: Optional[str] = None,
                       checkpoint_keep: Optional[bool] = None,
                       engine: Any = None) -> "StreamingFit":
        """Rebuild a streaming fit from its checkpoint and finish any
        in-flight assimilation.

        The conditioned data recorded in the checkpoint wins over whatever
        ``conditioned`` currently holds (the snapshot *is* the stream
        position); ``conditioned`` supplies the compiled model.  The
        continuation is bitwise-identical to the uninterrupted fit; further
        ``extend()`` calls pick up the stream from there.
        """
        config = dict(payload["config"])
        stage = payload["stage"]
        compiled = conditioned.compiled
        every = checkpoint_every if checkpoint_every is not None \
            else payload.get("checkpoint_every")
        keep = checkpoint_keep if checkpoint_keep is not None \
            else payload.get("checkpoint_keep", False)
        path = checkpoint_path or default_path
        fit = cls(compiled.condition(stage["data"]), engine=engine,
                  checkpoint_every=every, checkpoint_path=path,
                  checkpoint_keep=bool(keep), **config)
        if fit._writer is not None:
            fit._writer.count = int(payload.get("snapshot_count", 0))
        fit.ensemble = ParticleEnsemble.from_snapshot(payload["ensemble"])
        fit.posteriors = [_posterior_from_state(state)
                          for state in payload.get("history", [])]
        fit.ladders = [list(ladder) for ladder in payload.get("ladders", [])]
        fit.assimilations = int(stage["assimilations"])
        fit.steps_total = int(stage["steps_total"])
        fit.emit_count = int(stage["emit_count"])
        fit.move_step_size = float(stage["move_step_size"])
        fit._divergences = int(stage.get("divergences", 0))
        fit.runtime_seconds = float(stage.get("runtime_so_far", 0.0))
        if stage.get("last_accept") is not None:
            fit._last_accept = np.asarray(stage["last_accept"], dtype=float)
        base_spec = stage.get("base")
        if base_spec is not None:
            # The checkpoint landed mid-bridge: rebuild the base endpoint
            # and drive the recorded ladder position to beta = 1.
            start = time.perf_counter()
            if base_spec["kind"] == "reference":
                base = GaussianReference(base_spec["loc"], base_spec["scale"])
            else:
                base = compiled.condition(base_spec["data"]).potential(
                    fit.seed, engine=engine)
                base.share_batched_classification(fit._batched_tiers)
            fit._base_spec = base_spec
            fit._update = SMCUpdate(fit, base, fit.target,
                                    beta=float(stage["beta"]),
                                    ladder=stage.get("ladder") or [])
            with fit.telemetry.span("smc.run", phase="resume",
                                    assimilation=fit.assimilations):
                fit._update.run()
                fit._finish_assimilation()
            fit.runtime_seconds += time.perf_counter() - start
        return fit


#: config keys whose attribute name differs from the checkpoint key.
_ATTR_FOR_KEY = {"resampler": "resampler_name"}


def _snapshot_data(data: Dict[str, Any]) -> Dict[str, Any]:
    """A deep-enough copy of a data dict for the checkpoint payload."""
    out: Dict[str, Any] = {}
    for name, value in data.items():
        arr = np.asarray(value)
        out[name] = arr.copy() if arr.ndim else value
    return out


def _posterior_state(posterior: Posterior) -> Dict[str, Any]:
    return {
        "draws": {k: v.copy() for k, v in posterior.draws.items()},
        "stats": {k: v.copy() for k, v in posterior.stats.items()},
        "unconstrained": (None if posterior.unconstrained is None
                          else posterior.unconstrained.copy()),
        "metadata": dict(posterior.metadata),
    }


def _posterior_from_state(state: Dict[str, Any]) -> Posterior:
    return Posterior(draws=state["draws"], stats=state["stats"],
                     unconstrained=state["unconstrained"],
                     metadata=state["metadata"])
