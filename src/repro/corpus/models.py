"""Bundled corpus of Stan model sources.

This is the stand-in for the two public collections the paper evaluates on —
the ``example-models`` repository (541 models, Table 1 / RQ1) and PosteriorDB
(Tables 2-5).  The models are either scaled-down transcriptions of the
models named in Table 3 (eight_schools, the kidscore/earnings/mesquite/nes
regressions, arK, arma11, garch11, dogs, hmm_example, low_dim_gauss_mix, ...)
or small models purpose-built to exercise one of the non-generative features
of Table 1 (left expressions, multiple updates, implicit priors, ``target +=``
and truncation).

Every entry is plain Stan source; the corpus benchmark compiles each of them
with all three schemes to reproduce the RQ1 generality numbers, and the
feature analyser runs over them to reproduce Table 1.
"""

from __future__ import annotations

from typing import Dict

MODELS: Dict[str, str] = {}


def register(name: str, source: str) -> str:
    MODELS[name] = source.strip() + "\n"
    return MODELS[name]


# ----------------------------------------------------------------------
# the running example (Fig. 1)
# ----------------------------------------------------------------------
register("coin", """
data {
  int N;
  int<lower=0, upper=1> x[N];
}
parameters {
  real<lower=0, upper=1> z;
}
model {
  z ~ beta(1, 1);
  for (i in 1:N)
    x[i] ~ bernoulli(z);
}
""")

register("coin_vectorized", """
data {
  int N;
  int<lower=0, upper=1> x[N];
}
parameters {
  real<lower=0, upper=1> z;
}
model {
  z ~ beta(1, 1);
  x ~ bernoulli(z);
}
""")

# ----------------------------------------------------------------------
# eight schools (centered / non-centered)
# ----------------------------------------------------------------------
register("eight_schools_centered", """
data {
  int<lower=0> J;
  real y[J];
  real<lower=0> sigma[J];
}
parameters {
  real mu;
  real<lower=0> tau;
  real theta[J];
}
model {
  mu ~ normal(0, 5);
  tau ~ cauchy(0, 5);
  theta ~ normal(mu, tau);
  y ~ normal(theta, sigma);
}
""")

register("eight_schools_noncentered", """
data {
  int<lower=0> J;
  real y[J];
  real<lower=0> sigma[J];
}
parameters {
  real mu;
  real<lower=0> tau;
  real theta_trans[J];
}
transformed parameters {
  real theta[J];
  for (j in 1:J)
    theta[j] = theta_trans[j] * tau + mu;
}
model {
  mu ~ normal(0, 5);
  tau ~ cauchy(0, 5);
  theta_trans ~ normal(0, 1);
  y ~ normal(theta, sigma);
}
""")

# ----------------------------------------------------------------------
# linear regressions (earnings / kidscore / mesquite / kilpisjarvi / blr)
# ----------------------------------------------------------------------
register("earn_height", """
data {
  int<lower=0> N;
  vector[N] earn;
  vector[N] height;
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  earn ~ normal(beta[1] + beta[2] * height, sigma);
}
""")

register("logearn_height", """
data {
  int<lower=0> N;
  vector[N] earn;
  vector[N] height;
}
transformed data {
  vector[N] log_earn;
  log_earn = log(earn);
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  log_earn ~ normal(beta[1] + beta[2] * height, sigma);
}
""")

register("logearn_height_male", """
data {
  int<lower=0> N;
  vector[N] earn;
  vector[N] height;
  vector[N] male;
}
transformed data {
  vector[N] log_earn;
  log_earn = log(earn);
}
parameters {
  vector[3] beta;
  real<lower=0> sigma;
}
model {
  log_earn ~ normal(beta[1] + beta[2] * height + beta[3] * male, sigma);
}
""")

register("logearn_logheight_male", """
data {
  int<lower=0> N;
  vector[N] earn;
  vector[N] height;
  vector[N] male;
}
transformed data {
  vector[N] log_earn;
  vector[N] log_height;
  log_earn = log(earn);
  log_height = log(height);
}
parameters {
  vector[3] beta;
  real<lower=0> sigma;
}
model {
  log_earn ~ normal(beta[1] + beta[2] * log_height + beta[3] * male, sigma);
}
""")

register("log10earn_height", """
data {
  int<lower=0> N;
  vector[N] earn;
  vector[N] height;
}
transformed data {
  vector[N] log10_earn;
  log10_earn = log(earn) / log(10.0);
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  log10_earn ~ normal(beta[1] + beta[2] * height, sigma);
}
""")

register("kidscore_momiq", """
data {
  int<lower=0> N;
  vector[N] kid_score;
  vector[N] mom_iq;
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  kid_score ~ normal(beta[1] + beta[2] * mom_iq, sigma);
}
""")

register("kidscore_momhs", """
data {
  int<lower=0> N;
  vector[N] kid_score;
  vector[N] mom_hs;
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  kid_score ~ normal(beta[1] + beta[2] * mom_hs, sigma);
}
""")

register("kidscore_momhsiq", """
data {
  int<lower=0> N;
  vector[N] kid_score;
  vector[N] mom_hs;
  vector[N] mom_iq;
}
parameters {
  vector[3] beta;
  real<lower=0> sigma;
}
model {
  kid_score ~ normal(beta[1] + beta[2] * mom_hs + beta[3] * mom_iq, sigma);
}
""")

register("kidscore_interaction", """
data {
  int<lower=0> N;
  vector[N] kid_score;
  vector[N] mom_hs;
  vector[N] mom_iq;
}
transformed data {
  vector[N] inter;
  inter = mom_hs .* mom_iq;
}
parameters {
  vector[4] beta;
  real<lower=0> sigma;
}
model {
  kid_score ~ normal(beta[1] + beta[2] * mom_hs + beta[3] * mom_iq + beta[4] * inter, sigma);
}
""")

register("kidscore_mom_work", """
data {
  int<lower=0> N;
  vector[N] kid_score;
  vector[N] mom_work;
}
parameters {
  vector[2] beta;
  real<lower=0> sigma;
}
model {
  kid_score ~ normal(beta[1] + beta[2] * mom_work, sigma);
}
""")

register("mesquite", """
data {
  int<lower=0> N;
  vector[N] weight;
  vector[N] diam1;
  vector[N] diam2;
  vector[N] canopy_height;
}
parameters {
  vector[4] beta;
  real<lower=0> sigma;
}
model {
  weight ~ normal(beta[1] + beta[2] * diam1 + beta[3] * diam2 + beta[4] * canopy_height, sigma);
}
""")

register("logmesquite_logvas", """
data {
  int<lower=0> N;
  vector[N] weight;
  vector[N] diam1;
  vector[N] diam2;
  vector[N] canopy_height;
}
transformed data {
  vector[N] log_weight;
  vector[N] log_canopy_volume;
  vector[N] log_canopy_area;
  log_weight = log(weight);
  log_canopy_volume = log(diam1 .* diam2 .* canopy_height);
  log_canopy_area = log(diam1 .* diam2);
}
parameters {
  vector[3] beta;
  real<lower=0> sigma;
}
model {
  log_weight ~ normal(beta[1] + beta[2] * log_canopy_volume + beta[3] * log_canopy_area, sigma);
}
""")

register("kilpisjarvi", """
data {
  int<lower=0> N;
  vector[N] x;
  vector[N] y;
  real pmualpha;
  real psalpha;
  real pmubeta;
  real psbeta;
}
parameters {
  real alpha;
  real beta;
  real<lower=0> sigma;
}
model {
  alpha ~ normal(pmualpha, psalpha);
  beta ~ normal(pmubeta, psbeta);
  y ~ normal(alpha + beta * x, sigma);
}
""")

register("blr", """
data {
  int<lower=0> N;
  int<lower=0> D;
  matrix[N, D] X;
  vector[N] y;
}
parameters {
  vector[D] beta;
  real<lower=0> sigma;
}
model {
  beta ~ normal(0, 10);
  sigma ~ normal(0, 10);
  y ~ normal(X * beta, sigma);
}
""")

# ----------------------------------------------------------------------
# logistic regression (nes)
# ----------------------------------------------------------------------
register("nes_logit", """
data {
  int<lower=0> N;
  vector[N] income;
  int<lower=0, upper=1> vote[N];
}
parameters {
  vector[2] beta;
}
model {
  vote ~ bernoulli_logit(beta[1] + beta[2] * income);
}
""")

# ----------------------------------------------------------------------
# time series (arK, arma11, garch11)
# ----------------------------------------------------------------------
register("arK", """
data {
  int<lower=0> K;
  int<lower=0> T;
  real y[T];
}
parameters {
  real alpha;
  real beta[K];
  real<lower=0> sigma;
}
model {
  alpha ~ normal(0, 10);
  beta ~ normal(0, 10);
  sigma ~ cauchy(0, 2.5);
  for (t in (K+1):T) {
    real mu;
    mu = alpha;
    for (k in 1:K)
      mu = mu + beta[k] * y[t - k];
    y[t] ~ normal(mu, sigma);
  }
}
""")

register("arma11", """
data {
  int<lower=1> T;
  real y[T];
}
parameters {
  real mu;
  real phi;
  real theta;
  real<lower=0> sigma;
}
model {
  real err;
  mu ~ normal(0, 10);
  phi ~ normal(0, 2);
  theta ~ normal(0, 2);
  sigma ~ cauchy(0, 5);
  err = y[1] - mu + phi * mu;
  err ~ normal(0, sigma);
  for (t in 2:T) {
    err = y[t] - (mu + phi * y[t - 1] + theta * err);
    err ~ normal(0, sigma);
  }
}
""")

register("garch11", """
data {
  int<lower=0> T;
  real y[T];
  real<lower=0> sigma1;
}
parameters {
  real mu;
  real<lower=0> alpha0;
  real<lower=0, upper=1> alpha1;
  real<lower=0, upper=1> beta1;
}
model {
  real sigma_t;
  sigma_t = sigma1;
  for (t in 2:T) {
    sigma_t = sqrt(alpha0 + alpha1 * square(y[t - 1] - mu) + beta1 * square(sigma_t));
    y[t] ~ normal(mu, sigma_t);
  }
}
""")

# ----------------------------------------------------------------------
# dogs (logistic learning model, nested loops)
# ----------------------------------------------------------------------
register("dogs", """
data {
  int<lower=0> n_dogs;
  int<lower=0> n_trials;
  int<lower=0, upper=1> y[n_dogs, n_trials];
}
parameters {
  vector[3] beta;
}
model {
  beta ~ normal(0, 100);
  for (j in 1:n_dogs) {
    real n_avoid;
    real n_shock;
    n_avoid = 0;
    n_shock = 0;
    for (t in 1:n_trials) {
      real p;
      p = beta[1] + beta[2] * n_avoid + beta[3] * n_shock;
      y[j, t] ~ bernoulli_logit(p);
      if (y[j, t] > 0.5)
        n_shock = n_shock + 1;
      else
        n_avoid = n_avoid + 1;
    }
  }
}
""")

register("dogs_log", """
data {
  int<lower=0> n_dogs;
  int<lower=0> n_trials;
  int<lower=0, upper=1> y[n_dogs, n_trials];
}
parameters {
  real<lower=0, upper=1> beta1;
  real<lower=0, upper=1> beta2;
}
model {
  for (j in 1:n_dogs) {
    real n_avoid;
    real n_shock;
    n_avoid = 0;
    n_shock = 0;
    for (t in 1:n_trials) {
      real p;
      p = fmin(0.9999, fmax(0.0001, beta1 ^ n_avoid * beta2 ^ n_shock));
      y[j, t] ~ bernoulli(p);
      if (y[j, t] > 0.5)
        n_shock = n_shock + 1;
      else
        n_avoid = n_avoid + 1;
    }
  }
}
""")

# ----------------------------------------------------------------------
# hidden Markov model (forward algorithm)
# ----------------------------------------------------------------------
register("hmm_example", """
data {
  int<lower=1> N;
  int<lower=1> K;
  real y[N];
}
parameters {
  simplex[K] theta[K];
  real mu[K];
}
model {
  real acc[K];
  real gamma[N, K];
  mu[1] ~ normal(3, 1);
  mu[2] ~ normal(10, 1);
  for (k in 1:K)
    gamma[1, k] = normal_lpdf(y[1], mu[k], 1);
  for (t in 2:N) {
    for (k in 1:K) {
      for (j in 1:K)
        acc[j] = gamma[t - 1, j] + log(theta[j, k]) + normal_lpdf(y[t], mu[k], 1);
      gamma[t, k] = log_sum_exp(acc);
    }
  }
  target += log_sum_exp(gamma[N]);
}
""")

# ----------------------------------------------------------------------
# mixtures (multimodal example of Fig. 10, low_dim_gauss_mix)
# ----------------------------------------------------------------------
register("multimodal", """
parameters {
  real cluster;
  real theta;
}
model {
  real mu;
  cluster ~ normal(0, 1);
  if (cluster > 0)
    mu = 20;
  else
    mu = 0;
  theta ~ normal(mu, 1);
}
""")

register("multimodal_guide", """
parameters {
  real cluster;
  real theta;
}
model {
  real mu;
  cluster ~ normal(0, 1);
  if (cluster > 0)
    mu = 20;
  else
    mu = 0;
  theta ~ normal(mu, 1);
}
guide parameters {
  real m1;
  real m2;
  real<lower=0> s1;
  real<lower=0> s2;
}
guide {
  cluster ~ normal(0, 1);
  if (cluster > 0)
    theta ~ normal(m1, s1);
  else
    theta ~ normal(m2, s2);
}
""")

register("low_dim_gauss_mix", """
data {
  int<lower=0> N;
  real y[N];
}
parameters {
  ordered[2] mu;
  real<lower=0> sigma[2];
  real<lower=0, upper=1> theta;
}
model {
  sigma ~ normal(0, 2);
  mu ~ normal(0, 2);
  theta ~ beta(5, 5);
  for (n in 1:N)
    target += log_sum_exp(log(theta) + normal_lpdf(y[n], mu[1], sigma[1]),
                          log(1 - theta) + normal_lpdf(y[n], mu[2], sigma[2]));
}
""")

# ----------------------------------------------------------------------
# models the backends cannot support (error rows of Tables 2-4)
# ----------------------------------------------------------------------
register("gp_regr", """
data {
  int<lower=1> N;
  real x[N];
  vector[N] y;
}
parameters {
  real<lower=0> rho;
  real<lower=0> alpha;
  real<lower=0> sigma;
}
model {
  matrix[N, N] cov;
  cov = cov_exp_quad(x, alpha, rho);
  rho ~ gamma(25, 4);
  alpha ~ normal(0, 2);
  sigma ~ normal(0, 1);
  y ~ multi_normal(rep_vector(0, N), cov);
}
""")

register("accel_gp", """
data {
  int<lower=1> N;
  real x[N];
  vector[N] y;
}
parameters {
  real<lower=0> rho;
  real<lower=0> alpha;
  real<lower=0> sigma;
}
model {
  matrix[N, N] cov;
  cov = cov_exp_quad(x, alpha, rho);
  y ~ multi_normal(rep_vector(0, N), cov);
}
""")

register("lotka_volterra", """
functions {
  real[] dz_dt(real t, real[] z, real[] theta) {
    real u;
    real v;
    u = z[1];
    v = z[2];
    return { (theta[1] - theta[2] * v) * u, (-theta[3] + theta[4] * u) * v };
  }
}
data {
  int<lower=0> N;
  real ts[N];
  real y_init[2];
  real y[N, 2];
}
parameters {
  real<lower=0> theta[4];
  real<lower=0> z_init[2];
  real<lower=0> sigma[2];
}
model {
  real z[N, 2];
  z = integrate_ode_rk45(dz_dt, z_init, 0, ts, theta);
  for (k in 1:2) {
    y_init[k] ~ lognormal(log(z_init[k]), sigma[k]);
    for (n in 1:N)
      y[n, k] ~ lognormal(log(z[n, k]), sigma[k]);
  }
}
""")

register("one_comp_mm_elim_abs", """
functions {
  real[] one_comp(real t, real[] y, real[] theta) {
    return { -theta[1] * y[1] / (theta[2] + y[1]) };
  }
}
data {
  int<lower=0> N;
  real ts[N];
  real y_obs[N];
}
parameters {
  real<lower=0> theta[2];
  real<lower=0> sigma;
}
model {
  real y_hat[N, 1];
  real y0[1];
  y0[1] = 10;
  y_hat = integrate_ode_bdf(one_comp, y0, 0, ts, theta);
  for (n in 1:N)
    y_obs[n] ~ lognormal(log(y_hat[n, 1]), sigma);
}
""")

register("diamonds", """
data {
  int<lower=0> N;
  vector[N] price;
  vector[N] carat;
}
parameters {
  real alpha;
  real beta;
  real<lower=0> sigma;
}
model {
  alpha ~ student_t(3, 8, 10);
  beta ~ normal(0, 1);
  sigma ~ student_t(3, 0, 10);
  target += student_t_lccdf(0, 3, 0, 10);
  price ~ normal(alpha + beta * carat, sigma);
}
""")

# ----------------------------------------------------------------------
# Table 1 feature exemplars
# ----------------------------------------------------------------------
register("left_expression_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
parameters {
  vector[N] phi;
}
model {
  sum(phi) ~ normal(0, 0.001 * N);
  y ~ normal(phi, 1);
}
""")

register("multiple_updates_example", """
data {
  int<lower=0> N;
  vector[N] y;
  real<lower=0> sigma_py;
  real<lower=0> sigma_pt;
}
parameters {
  real phi_y;
}
model {
  phi_y ~ normal(0, sigma_py);
  phi_y ~ normal(0, sigma_pt);
  y ~ normal(phi_y, 1);
}
""")

register("implicit_prior_example", """
data {
  int<lower=0> N;
  vector[N] y;
  vector[N] x;
}
parameters {
  real alpha0;
  real beta0;
  real<lower=0> sigma;
}
model {
  /* missing 'alpha0 ~ ...' and 'beta0 ~ ...' */
  y ~ normal(alpha0 + beta0 * x, sigma);
}
""")

register("target_update_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
parameters {
  real mu;
}
model {
  target += normal_lpdf(mu, 0, 10);
  target += normal_lpdf(y, mu, 1);
}
""")

register("truncation_example", """
data {
  int<lower=0> N;
  real y[N];
}
parameters {
  real mu;
  real<lower=0> sigma;
}
model {
  mu ~ normal(0, 10);
  for (n in 1:N)
    y[n] ~ normal(mu, sigma) T[0, ];
}
""")

register("out_of_order_example", """
data {
  int<lower=0> N;
  vector[N] z;
}
parameters {
  real x;
  real y;
}
model {
  y ~ normal(x, 1);
  x ~ normal(0, 1);
  z ~ normal(y, 1);
}
""")

register("mixed_merge_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
parameters {
  real mu;
  real<lower=0> sigma;
}
model {
  mu ~ normal(0, 10);
  sigma ~ normal(0, 1);
  y ~ normal(mu, sigma);
}
""")

register("poisson_counts", """
data {
  int<lower=0> N;
  int<lower=0> y[N];
  vector[N] x;
}
parameters {
  real alpha;
  real beta;
}
model {
  alpha ~ normal(0, 5);
  beta ~ normal(0, 5);
  y ~ poisson_log(alpha + beta * x);
}
""")

register("gamma_regression", """
data {
  int<lower=0> N;
  vector[N] y;
  vector[N] x;
}
parameters {
  real alpha;
  real beta;
  real<lower=0> shape;
}
model {
  alpha ~ normal(0, 5);
  beta ~ normal(0, 5);
  shape ~ exponential(1);
  y ~ gamma(shape, shape ./ exp(alpha + beta * x));
}
""")

register("seeds_binomial", """
data {
  int<lower=0> N;
  int<lower=0> n[N];
  int<lower=0> r[N];
  vector[N] x1;
}
parameters {
  real alpha0;
  real alpha1;
}
model {
  alpha0 ~ normal(0, 10);
  alpha1 ~ normal(0, 10);
  r ~ binomial_logit(n, alpha0 + alpha1 * x1);
}
""")

register("categorical_softmax", """
data {
  int<lower=1> N;
  int<lower=1> K;
  int<lower=1> y[N];
}
parameters {
  vector[K] beta;
}
model {
  beta ~ normal(0, 5);
  for (n in 1:N)
    y[n] ~ categorical_logit(beta);
}
""")

register("dirichlet_multinomial", """
data {
  int<lower=1> K;
  int<lower=0> y[K];
}
parameters {
  simplex[K] theta;
}
model {
  theta ~ dirichlet(rep_vector(1.0, K));
  for (k in 1:K)
    target += y[k] * log(theta[k]);
}
""")

register("while_loop_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
parameters {
  real mu;
}
model {
  int i;
  mu ~ normal(0, 5);
  i = 1;
  while (i <= N) {
    y[i] ~ normal(mu, 1);
    i = i + 1;
  }
}
""")

register("user_function_example", """
functions {
  real linear_combination(real a, real b, real x) {
    return a + b * x;
  }
}
data {
  int<lower=0> N;
  vector[N] y;
  vector[N] x;
}
parameters {
  real alpha;
  real beta;
  real<lower=0> sigma;
}
model {
  alpha ~ normal(0, 5);
  beta ~ normal(0, 5);
  sigma ~ cauchy(0, 2);
  for (n in 1:N)
    y[n] ~ normal(linear_combination(alpha, beta, x[n]), sigma);
}
""")

register("generated_quantities_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
parameters {
  real mu;
  real<lower=0> sigma;
}
model {
  mu ~ normal(0, 10);
  sigma ~ cauchy(0, 5);
  y ~ normal(mu, sigma);
}
generated quantities {
  real y_pred;
  real log_lik;
  y_pred = normal_rng(mu, sigma);
  log_lik = normal_lpdf(y, mu, sigma);
}
""")

# ----------------------------------------------------------------------
# discrete latent variables (the enumeration engine's flagship workloads)
#
# Stan itself rejects every model in this group: they declare bounded `int`
# parameters.  They compile with `enumerate="parallel"`, which marginalizes
# the discrete latents exactly.  The mixture and ZIP models have a
# hand-marginalized `_marginal` counterpart (the formulation Stan forces on
# users) defining the same posterior over the continuous parameters, used by
# the equivalence tests and BENCH_discrete; the HMM is instead checked
# against an independent forward-algorithm computation in the tests.
# ----------------------------------------------------------------------
register("gauss_mix_enum", """
data {
  int N;
  real y[N];
}
parameters {
  real<lower=0, upper=1> theta;
  real mu[2];
  real<lower=0> sigma;
  int<lower=1, upper=2> z[N];
}
model {
  vector[2] pi;
  pi[1] = theta;
  pi[2] = 1 - theta;
  theta ~ beta(2, 2);
  mu[1] ~ normal(-2, 1);
  mu[2] ~ normal(2, 1);
  sigma ~ normal(0, 1);
  for (n in 1:N) {
    z[n] ~ categorical(pi);
    y[n] ~ normal(mu[z[n]], sigma);
  }
}
""")

register("gauss_mix_marginal", """
data {
  int N;
  real y[N];
}
parameters {
  real<lower=0, upper=1> theta;
  real mu[2];
  real<lower=0> sigma;
}
model {
  vector[2] pi;
  pi[1] = theta;
  pi[2] = 1 - theta;
  theta ~ beta(2, 2);
  mu[1] ~ normal(-2, 1);
  mu[2] ~ normal(2, 1);
  sigma ~ normal(0, 1);
  for (n in 1:N)
    target += log_sum_exp(log(pi[1]) + normal_lpdf(y[n], mu[1], sigma),
                          log(pi[2]) + normal_lpdf(y[n], mu[2], sigma));
}
""")

register("zip_poisson_enum", """
data {
  int N;
  int y[N];
}
parameters {
  real<lower=0, upper=1> psi;
  real<lower=0> lam;
  int<lower=0, upper=1> z[N];
}
model {
  psi ~ beta(1, 1);
  lam ~ gamma(2, 0.5);
  for (n in 1:N) {
    z[n] ~ bernoulli(psi);
    y[n] ~ poisson(0.1 + z[n] * lam);
  }
}
""")

register("zip_poisson_marginal", """
data {
  int N;
  int y[N];
}
parameters {
  real<lower=0, upper=1> psi;
  real<lower=0> lam;
}
model {
  psi ~ beta(1, 1);
  lam ~ gamma(2, 0.5);
  for (n in 1:N)
    target += log_sum_exp(log(psi) + poisson_lpmf(y[n], 0.1 + lam),
                          log1m(psi) + poisson_lpmf(y[n], 0.1));
}
""")

register("hmm_enum", """
data {
  int T;
  real y[T];
  matrix[2, 2] Gamma;
  vector[2] rho;
}
parameters {
  real mu[2];
  int<lower=1, upper=2> z[T];
}
model {
  mu[1] ~ normal(-1, 1);
  mu[2] ~ normal(1, 1);
  z[1] ~ categorical(rho);
  for (t in 2:T)
    z[t] ~ categorical(Gamma[z[t - 1]]);
  for (t in 1:T)
    y[t] ~ normal(mu[z[t]], 0.5);
}
""")

register("hmm_marginal", """
data {
  int T;
  real y[T];
  matrix[2, 2] Gamma;
  vector[2] rho;
}
parameters {
  real mu[2];
}
model {
  vector[2] alpha;
  vector[2] alpha_new;
  mu[1] ~ normal(-1, 1);
  mu[2] ~ normal(1, 1);
  for (k in 1:2)
    alpha[k] = log(rho[k]) + normal_lpdf(y[1], mu[k], 0.5);
  for (t in 2:T) {
    for (k in 1:2)
      alpha_new[k] = log_sum_exp(alpha[1] + log(Gamma[1, k]),
                                 alpha[2] + log(Gamma[2, k]))
                     + normal_lpdf(y[t], mu[k], 0.5);
    alpha = alpha_new;
  }
  target += log_sum_exp(alpha);
}
""")

# K-state HMM pair, size-generic in both T and K: the enumerated formulation
# writes the model the obvious way (int state path, categorical transitions);
# the marginal twin is the hand-written forward algorithm the paper's users
# had to produce — a triple nested loop of log_sum_exp algebra.  The
# factorized engine detects the chain coupling z[t] ~ f(z[t-1]) and
# eliminates it in O(T*K^2); the joint table would hold K^T entries.
register("hmm_k_enum", """
data {
  int T;
  int K;
  real y[T];
  matrix[K, K] Gamma;
  vector[K] rho;
  vector[K] mu0;
}
parameters {
  real mu[K];
  int<lower=1, upper=K> z[T];
}
model {
  for (k in 1:K)
    mu[k] ~ normal(mu0[k], 1);
  z[1] ~ categorical(rho);
  for (t in 2:T)
    z[t] ~ categorical(Gamma[z[t - 1]]);
  for (t in 1:T)
    y[t] ~ normal(mu[z[t]], 0.5);
}
""")

register("hmm_k_marginal", """
data {
  int T;
  int K;
  real y[T];
  matrix[K, K] Gamma;
  vector[K] rho;
  vector[K] mu0;
}
parameters {
  real mu[K];
}
model {
  vector[K] alpha;
  vector[K] alpha_new;
  vector[K] acc;
  for (k in 1:K)
    mu[k] ~ normal(mu0[k], 1);
  for (k in 1:K)
    alpha[k] = log(rho[k]) + normal_lpdf(y[1], mu[k], 0.5);
  for (t in 2:T) {
    for (k in 1:K) {
      for (j in 1:K)
        acc[j] = alpha[j] + log(Gamma[j, k]);
      alpha_new[k] = log_sum_exp(acc) + normal_lpdf(y[t], mu[k], 0.5);
    }
    alpha = alpha_new;
  }
  target += log_sum_exp(alpha);
}
""")

# Multi-site coupled workloads for the general contraction engine
# (enum="auto"/"contract"): discrete structure no chain or independent-block
# special case covers.  The factorial HMM couples TWO latent chains through a
# joint emission — its factor graph is a ladder (treewidth 2), eliminated by
# the greedy contraction order in O(T * K^3)-ish message sizes while the
# joint table would hold (K*K)^T entries.  The marginal twin is the forward
# algorithm on the K^2-state product chain (the algebra Stan forces).  Note
# the enumerated formulation's density differs from the twin's by the
# constant the bounded-int declarations contribute (uniform support priors),
# so comparisons are posterior-level (or gradient-level), like the HMM pair.
register("factorial_hmm_enum", """
data {
  int T;
  real y[T];
  matrix[2, 2] G1;
  matrix[2, 2] G2;
  vector[2] rho1;
  vector[2] rho2;
}
parameters {
  real mu1[2];
  real mu2[2];
  int<lower=1, upper=2> z1[T];
  int<lower=1, upper=2> z2[T];
}
model {
  mu1[1] ~ normal(-1, 1);
  mu1[2] ~ normal(1, 1);
  mu2[1] ~ normal(-0.5, 1);
  mu2[2] ~ normal(0.5, 1);
  z1[1] ~ categorical(rho1);
  z2[1] ~ categorical(rho2);
  for (t in 2:T) {
    z1[t] ~ categorical(G1[z1[t - 1]]);
    z2[t] ~ categorical(G2[z2[t - 1]]);
  }
  for (t in 1:T)
    y[t] ~ normal(mu1[z1[t]] + mu2[z2[t]], 0.5);
}
""")

register("factorial_hmm_marginal", """
data {
  int T;
  real y[T];
  matrix[2, 2] G1;
  matrix[2, 2] G2;
  vector[2] rho1;
  vector[2] rho2;
}
parameters {
  real mu1[2];
  real mu2[2];
}
model {
  vector[4] alpha;
  vector[4] alpha_new;
  vector[4] acc;
  mu1[1] ~ normal(-1, 1);
  mu1[2] ~ normal(1, 1);
  mu2[1] ~ normal(-0.5, 1);
  mu2[2] ~ normal(0.5, 1);
  for (i in 1:2)
    for (j in 1:2)
      alpha[2 * (i - 1) + j] = log(rho1[i]) + log(rho2[j])
                               + normal_lpdf(y[1], mu1[i] + mu2[j], 0.5);
  for (t in 2:T) {
    for (i in 1:2) {
      for (j in 1:2) {
        for (a in 1:2)
          for (b in 1:2)
            acc[2 * (a - 1) + b] = alpha[2 * (a - 1) + b]
                                   + log(G1[a, i]) + log(G2[b, j]);
        alpha_new[2 * (i - 1) + j] = log_sum_exp(acc)
                                     + normal_lpdf(y[t], mu1[i] + mu2[j], 0.5);
      }
    }
    alpha = alpha_new;
  }
  target += log_sum_exp(alpha);
}
""")

# Tree-coupled mixture: component labels interact along a data-supplied tree
# (parent[i] < i, parent[1] unused) through an Ising-style coupling term.
# The factor graph is the tree itself — the greedy order eliminates leaves
# upward in O(N * K^2) — while chains/independent blocks cannot represent it
# and the joint table would hold K^N rows.  The marginal twin is upward
# belief propagation written as log_sum_exp algebra over two per-state
# message vectors.
register("tree_mix_enum", """
data {
  int N;
  real y[N];
  int parent[N];
  real coupling;
  vector[2] rho;
}
parameters {
  real mu[2];
  int<lower=1, upper=2> z[N];
}
model {
  mu[1] ~ normal(-2, 1);
  mu[2] ~ normal(2, 1);
  for (i in 1:N) {
    z[i] ~ categorical(rho);
    y[i] ~ normal(mu[z[i]], 0.8);
  }
  for (i in 2:N)
    target += coupling * (2 * z[i] - 3) * (2 * z[parent[i]] - 3);
}
""")

register("tree_mix_marginal", """
data {
  int N;
  real y[N];
  int parent[N];
  real coupling;
  vector[2] rho;
}
parameters {
  real mu[2];
}
model {
  vector[N] lam1;
  vector[N] lam2;
  real m1;
  real m2;
  mu[1] ~ normal(-2, 1);
  mu[2] ~ normal(2, 1);
  for (i in 1:N) {
    lam1[i] = log(rho[1]) + normal_lpdf(y[i], mu[1], 0.8);
    lam2[i] = log(rho[2]) + normal_lpdf(y[i], mu[2], 0.8);
  }
  for (r in 1:(N - 1)) {
    m1 = log_sum_exp(lam1[N + 1 - r] + coupling, lam2[N + 1 - r] - coupling);
    m2 = log_sum_exp(lam1[N + 1 - r] - coupling, lam2[N + 1 - r] + coupling);
    lam1[parent[N + 1 - r]] += m1;
    lam2[parent[N + 1 - r]] += m2;
  }
  target += log_sum_exp(lam1[1], lam2[1]);
}
""")

register("transformed_data_example", """
data {
  int<lower=0> N;
  vector[N] y;
}
transformed data {
  real mean_y;
  real<lower=0> sd_y;
  mean_y = mean(y);
  sd_y = sd(y);
}
parameters {
  real mu_std;
}
model {
  mu_std ~ normal(0, 1);
  y ~ normal(mean_y + sd_y * mu_std, sd_y);
}
""")


def get(name: str) -> str:
    """Source text of a corpus model."""
    return MODELS[name]


def names():
    """All registered corpus model names (sorted)."""
    return sorted(MODELS)
