"""Bundled corpus of Stan models (the ``example-models`` substitute)."""

from repro.corpus.models import MODELS, get, names

__all__ = ["MODELS", "get", "names"]
