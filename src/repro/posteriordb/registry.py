"""The PosteriorDB-style registry: (model, dataset, config, reference) entries.

Each :class:`Entry` bundles what PosteriorDB provides for a posterior —
the Stan program, the dataset, the sampler configuration used for the
reference run, and a way to obtain reference posterior draws — plus two
pieces of reproduction metadata:

* ``expect_unsupported`` marks entries whose models use standard-library
  features none of our backends implement (``cov_exp_quad``, ODE solvers,
  ``student_t_lccdf``), reproducing the error rows of Tables 2-4;
* ``expect_mismatch`` marks entries the paper itself reports as mismatches
  (``garch11``'s data-dependent constraint, ``low_dim_gauss_mix``'s ordered
  constraint under the older Pyro versions).

The sampler configurations are scaled down from PosteriorDB's (10k draws) to
keep the whole benchmark suite under a few minutes of wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


from repro.corpus import models as corpus_models
from repro.posteriordb import datagen


@dataclass
class InferenceConfig:
    """Scaled-down analogue of PosteriorDB's reference sampler configuration."""

    num_warmup: int = 200
    num_samples: int = 200
    num_chains: int = 1
    thinning: int = 1
    seed: int = 0
    max_tree_depth: int = 8


@dataclass
class Entry:
    """One (model, dataset) pair of the registry."""

    name: str
    model_name: str
    dataset_name: str
    data_fn: Callable[[], Dict[str, Any]]
    config: InferenceConfig = field(default_factory=InferenceConfig)
    expect_unsupported: bool = False
    expect_mismatch: bool = False
    description: str = ""
    #: ``"factorized"`` / ``"parallel"`` for models with bounded ``int``
    #: parameters — they only compile through the discrete-latent enumeration
    #: engine (``compile_model(..., enumerate=entry.enumerate)``) and are
    #: excluded from the plain-path tables like ``expect_unsupported``
    #: entries.  ``"factorized"`` (the default for these workloads) runs the
    #: sum-product engine: O(N*K) for independent elements, O(T*K^2) for
    #: chains, joint-table fallback otherwise.
    enumerate: Optional[str] = None
    #: new-API enumeration strategy (``compile_model(..., enum=entry.enum)``)
    #: for workloads needing the general contraction engine — multi-site or
    #: tree coupling that the legacy ``enumerate=`` spellings cannot
    #: eliminate.  Entries with either ``enum`` or ``enumerate`` set are
    #: excluded from the plain-path tables.
    enum: Optional[str] = None

    @property
    def source(self) -> str:
        return corpus_models.get(self.model_name)

    def data(self) -> Dict[str, Any]:
        return self.data_fn()


_REGISTRY: Dict[str, Entry] = {}


def register(entry: Entry) -> Entry:
    _REGISTRY[entry.name] = entry
    return entry


def get(name: str) -> Entry:
    return _REGISTRY[name]


def names(include_unsupported: bool = True) -> List[str]:
    return sorted(
        name for name, entry in _REGISTRY.items()
        if include_unsupported
        or not (entry.expect_unsupported or entry.enumerate is not None
                or entry.enum is not None)
    )


def entries(include_unsupported: bool = True) -> List[Entry]:
    return [_REGISTRY[name] for name in names(include_unsupported)]


def supported_entries() -> List[Entry]:
    return entries(include_unsupported=False)


# ----------------------------------------------------------------------
# registry contents (the Table 3 rows, scaled down)
# ----------------------------------------------------------------------
register(Entry("coin-flips", "coin", "flips", datagen.coin_data,
               description="running example of Fig. 1"))
register(Entry("eight_schools_centered-eight_schools", "eight_schools_centered",
               "eight_schools", datagen.eight_schools_data,
               config=InferenceConfig(num_warmup=300, num_samples=300),
               description="hierarchical meta-analysis, centered parameterisation"))
register(Entry("eight_schools_noncentered-eight_schools", "eight_schools_noncentered",
               "eight_schools", datagen.eight_schools_data,
               config=InferenceConfig(num_warmup=300, num_samples=300),
               description="non-centered parameterisation"))
register(Entry("earn_height-earnings", "earn_height", "earnings", datagen.earnings_data))
register(Entry("logearn_height-earnings", "logearn_height", "earnings", datagen.earnings_data))
register(Entry("logearn_height_male-earnings", "logearn_height_male", "earnings",
               datagen.earnings_data))
register(Entry("logearn_logheight_male-earnings", "logearn_logheight_male", "earnings",
               datagen.earnings_data))
register(Entry("log10earn_height-earnings", "log10earn_height", "earnings",
               datagen.earnings_data))
register(Entry("kidscore_momiq-kidiq", "kidscore_momiq", "kidiq", datagen.kidiq_data))
register(Entry("kidscore_momhs-kidiq", "kidscore_momhs", "kidiq", datagen.kidiq_data))
register(Entry("kidscore_momhsiq-kidiq", "kidscore_momhsiq", "kidiq", datagen.kidiq_data))
register(Entry("kidscore_interaction-kidiq", "kidscore_interaction", "kidiq", datagen.kidiq_data))
register(Entry("kidscore_mom_work-kidiq_with_mom_work", "kidscore_mom_work",
               "kidiq_with_mom_work", datagen.kidiq_data))
register(Entry("mesquite-mesquite", "mesquite", "mesquite", datagen.mesquite_data))
register(Entry("logmesquite_logvas-mesquite", "logmesquite_logvas", "mesquite",
               datagen.mesquite_data))
register(Entry("kilpisjarvi-kilpisjarvi_mod", "kilpisjarvi", "kilpisjarvi_mod",
               datagen.kilpisjarvi_data))
register(Entry("blr-sblri", "blr", "sblri", datagen.blr_data))
register(Entry("nes-nes1980", "nes_logit", "nes1980", lambda: datagen.nes_data(seed=1980)))
register(Entry("nes-nes1996", "nes_logit", "nes1996", lambda: datagen.nes_data(seed=1996)))
register(Entry("nes-nes2000", "nes_logit", "nes2000", lambda: datagen.nes_data(seed=2000)))
register(Entry("arK-arK", "arK", "arK", datagen.ar_data,
               config=InferenceConfig(num_warmup=150, num_samples=150, max_tree_depth=6),
               description="AR(K) model with a nested sequential loop"))
register(Entry("arma11-arma", "arma11", "arma", datagen.arma_data,
               config=InferenceConfig(num_warmup=150, num_samples=150, max_tree_depth=6),
               description="ARMA(1,1); sequential loop over time"))
register(Entry("garch11-garch", "garch11", "garch", datagen.garch_data,
               config=InferenceConfig(num_warmup=150, num_samples=150, max_tree_depth=6),
               expect_mismatch=True,
               description="GARCH(1,1); the paper reports a mismatch because one "
                           "parameter's constraint depends on another parameter"))
register(Entry("dogs-dogs", "dogs", "dogs", datagen.dogs_data,
               config=InferenceConfig(num_warmup=150, num_samples=150, max_tree_depth=6),
               description="avoidance-learning model with nested loops"))
register(Entry("dogs_log-dogs", "dogs_log", "dogs", datagen.dogs_data,
               config=InferenceConfig(num_warmup=150, num_samples=150, max_tree_depth=6)))
register(Entry("hmm_example-hmm_example", "hmm_example", "hmm_example", datagen.hmm_data,
               config=InferenceConfig(num_warmup=100, num_samples=100, max_tree_depth=6),
               expect_mismatch=True,
               description="forward-algorithm HMM; arrays of simplex parameters are "
                           "outside the supported constraint set of this reproduction"))
register(Entry("low_dim_gauss_mix-low_dim_gauss_mix", "low_dim_gauss_mix",
               "low_dim_gauss_mix", datagen.gauss_mix_data,
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=6),
               expect_mismatch=True,
               description="two-component mixture with an ordered constraint (the paper "
                           "reports a mismatch for the Pyro/NumPyro versions it used)"))
register(Entry("poisson_counts-synthetic", "poisson_counts", "synthetic",
               datagen.poisson_data))
register(Entry("seeds_binomial-seeds", "seeds_binomial", "seeds", datagen.seeds_data))
# Unsupported standard-library features (error rows of Tables 2-4).
register(Entry("gp_regr-gp_pois_regr", "gp_regr", "gp_pois_regr", datagen.gp_data,
               expect_unsupported=True,
               description="requires cov_exp_quad (missing from the runtime library)"))
register(Entry("accel_gp-mcycle_gp", "accel_gp", "mcycle_gp", datagen.gp_data,
               expect_unsupported=True,
               description="requires cov_exp_quad (missing from the runtime library)"))
register(Entry("lotka_volterra-hudson_lynx_hare", "lotka_volterra", "hudson_lynx_hare",
               datagen.lotka_volterra_data, expect_unsupported=True,
               description="requires the ODE solver integrate_ode_rk45"))
register(Entry("one_comp_mm_elim_abs-one_comp_mm_elim_abs", "one_comp_mm_elim_abs",
               "one_comp_mm_elim_abs", datagen.one_comp_data, expect_unsupported=True,
               description="requires the ODE solver integrate_ode_bdf"))
register(Entry("diamonds-diamonds", "diamonds", "diamonds", datagen.diamonds_data,
               expect_unsupported=True,
               description="requires student_t_lccdf (missing from the runtime library)"))
# Discrete latent variables (the enumeration engine's workloads).  The
# `_enum` entries declare bounded int parameters — Stan itself rejects them,
# and so does our plain compile path; they run via
# compile_model(..., enumerate=entry.enumerate).  Each has a hand-marginalized
# counterpart defining the same continuous posterior (BENCH_discrete compares
# the two).
register(Entry("gauss_mix_enum-synthetic_mixture", "gauss_mix_enum", "synthetic_mixture",
               datagen.gauss_mix_enum_data, enumerate="factorized",
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="2-component mixture with int<lower=1,upper=2> assignments, "
                           "marginalized by per-element enumeration"))
register(Entry("gauss_mix_marginal-synthetic_mixture", "gauss_mix_marginal",
               "synthetic_mixture", datagen.gauss_mix_enum_data,
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="hand-marginalized formulation of gauss_mix_enum "
                           "(what Stan forces users to write)"))
register(Entry("zip_poisson_enum-synthetic_zip", "zip_poisson_enum", "synthetic_zip",
               datagen.zip_poisson_data, enumerate="factorized",
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="occupancy/zero-inflated Poisson with Bernoulli latents"))
register(Entry("zip_poisson_marginal-synthetic_zip", "zip_poisson_marginal",
               "synthetic_zip", datagen.zip_poisson_data,
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="hand-marginalized zero-inflated Poisson"))
register(Entry("hmm_enum-synthetic_hmm", "hmm_enum", "synthetic_hmm",
               datagen.hmm_enum_data, enumerate="factorized",
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="short 2-state HMM: the factorized engine detects the "
                           "chain and runs the forward algorithm automatically"))
# Scaling workloads: sizes whose joint assignment table (2^500, 4^200) is
# unrepresentable — only the factorized strategy can evaluate them.  Each has
# a hand-marginalized twin defining the same continuous posterior; the CI
# `enum-scaling` job asserts posterior agreement between the pairs.
register(Entry("gauss_mix_enum-synthetic_mixture_large", "gauss_mix_enum",
               "synthetic_mixture_large", datagen.gauss_mix_enum_large_data,
               enumerate="factorized",
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="the mixture at N=500: joint table would be 2^500; "
                           "per-element enumeration runs it in O(N*K)"))
register(Entry("gauss_mix_marginal-synthetic_mixture_large", "gauss_mix_marginal",
               "synthetic_mixture_large", datagen.gauss_mix_enum_large_data,
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="hand-marginalized twin of the N=500 mixture"))
register(Entry("hmm_k_enum-synthetic_hmm4", "hmm_k_enum", "synthetic_hmm4",
               datagen.hmm_k_data, enumerate="factorized",
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="4-state HMM at T=200: joint table would be 4^200; "
                           "chain elimination runs it in O(T*K^2)"))
register(Entry("hmm_k_marginal-synthetic_hmm4", "hmm_k_marginal", "synthetic_hmm4",
               datagen.hmm_k_data,
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="hand-written forward algorithm twin of hmm_k_enum "
                           "(the log_sum_exp algebra the paper's users must write)"))
register(Entry("hmm_marginal-synthetic_hmm", "hmm_marginal", "synthetic_hmm",
               datagen.hmm_enum_data,
               config=InferenceConfig(num_warmup=200, num_samples=200, max_tree_depth=7),
               description="hand-written forward algorithm twin of hmm_enum"))
# General-contraction workloads (enum="auto" resolves to the "contract"
# strategy): discrete structure outside every special case — two coupled
# chains sharing an emission (a ladder factor graph) and a tree of coupled
# component labels.  Sizes put the joint table beyond 10^50 entries
# (4^100, 2^200); greedy tensor variable elimination runs them in cost
# linear in the element count at fixed treewidth.  Each has a
# hand-marginalized twin (product-chain forward algorithm / upward belief
# propagation) defining the same continuous posterior.
register(Entry("factorial_hmm_enum-synthetic_factorial", "factorial_hmm_enum",
               "synthetic_factorial", datagen.factorial_hmm_data, enum="auto",
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="two coupled binary chains with a joint emission at "
                           "T=100: joint table would be 4^100; the contract "
                           "strategy eliminates the ladder in O(T) messages"))
register(Entry("factorial_hmm_marginal-synthetic_factorial", "factorial_hmm_marginal",
               "synthetic_factorial", datagen.factorial_hmm_data,
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="hand-written forward algorithm on the 4-state "
                           "product chain, twin of factorial_hmm_enum"))
register(Entry("tree_mix_enum-synthetic_tree", "tree_mix_enum", "synthetic_tree",
               datagen.tree_mix_data, enum="auto",
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="tree-coupled binary mixture at N=200: joint table "
                           "would be 2^200; tree elimination is linear in N"))
register(Entry("tree_mix_marginal-synthetic_tree", "tree_mix_marginal",
               "synthetic_tree", datagen.tree_mix_data,
               config=InferenceConfig(num_warmup=40, num_samples=40, max_tree_depth=6),
               description="upward belief-propagation twin of tree_mix_enum"))
