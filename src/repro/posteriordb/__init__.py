"""PosteriorDB substitute: model/dataset/config registry with references."""

from repro.posteriordb.registry import (
    Entry,
    InferenceConfig,
    entries,
    get,
    names,
    register,
    supported_entries,
)
from repro.posteriordb import datagen

__all__ = [
    "Entry",
    "InferenceConfig",
    "entries",
    "get",
    "names",
    "register",
    "supported_entries",
    "datagen",
]
