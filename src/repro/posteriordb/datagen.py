"""Synthetic dataset generators for the PosteriorDB-style registry.

PosteriorDB pairs each Stan model with a real dataset (earnings, kidiq,
mesquite, NES surveys, ...).  Those datasets are not redistributable/offline,
so each registry entry instead carries a generator producing a synthetic
dataset with the same schema and qualitatively similar scale (sample sizes are
reduced so the NUTS benchmarks stay laptop-sized).  The generators are
deterministic given their seed, so reference posteriors and backend runs see
the same data.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


def coin_data(seed: int = 0, n: int = 40) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    return {"N": n, "x": rng.binomial(1, 0.7, size=n).astype(float)}


def eight_schools_data(seed: int = 0) -> Dict[str, Any]:
    # The classic eight-schools data (public domain, Rubin 1981).
    return {
        "J": 8,
        "y": np.array([28.0, 8.0, -3.0, 7.0, -1.0, 1.0, 18.0, 12.0]),
        "sigma": np.array([15.0, 10.0, 16.0, 11.0, 9.0, 11.0, 10.0, 18.0]),
    }


def earnings_data(seed: int = 0, n: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    height = rng.normal(66.0, 4.0, size=n)
    male = rng.binomial(1, 0.5, size=n).astype(float)
    log_earn = 6.0 + 0.025 * height + 0.4 * male + rng.normal(0, 0.5, size=n)
    return {"N": n, "earn": np.exp(log_earn), "height": height, "male": male}


def kidiq_data(seed: int = 0, n: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    mom_iq = rng.normal(100.0, 15.0, size=n)
    mom_hs = rng.binomial(1, 0.8, size=n).astype(float)
    mom_work = rng.integers(1, 5, size=n).astype(float)
    kid_score = 20.0 + 0.6 * mom_iq + 5.0 * mom_hs + rng.normal(0, 18.0, size=n)
    return {"N": n, "kid_score": kid_score, "mom_iq": mom_iq, "mom_hs": mom_hs,
            "mom_work": mom_work}


def mesquite_data(seed: int = 0, n: int = 45) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    diam1 = rng.uniform(0.8, 4.0, size=n)
    diam2 = rng.uniform(0.5, 3.0, size=n)
    canopy_height = rng.uniform(0.5, 2.5, size=n)
    weight = np.exp(0.5 + 1.2 * np.log(diam1 * diam2 * canopy_height)
                    + rng.normal(0, 0.3, size=n))
    return {"N": n, "weight": weight, "diam1": diam1, "diam2": diam2,
            "canopy_height": canopy_height}


def kilpisjarvi_data(seed: int = 0, n: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    year = np.linspace(0.0, 1.0, n)
    temp = 2.0 + 1.5 * year + rng.normal(0, 0.8, size=n)
    return {"N": n, "x": year, "y": temp,
            "pmualpha": 2.0, "psalpha": 10.0, "pmubeta": 0.0, "psbeta": 10.0}


def blr_data(seed: int = 0, n: int = 50, d: int = 3) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    beta = rng.normal(0, 1.0, size=d)
    y = X @ beta + rng.normal(0, 0.7, size=n)
    return {"N": n, "D": d, "X": X, "y": y}


def nes_data(seed: int = 0, n: int = 80) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    income = rng.normal(0.0, 1.0, size=n)
    logits = 0.3 + 0.8 * income
    vote = (rng.uniform(size=n) < 1.0 / (1.0 + np.exp(-logits))).astype(float)
    return {"N": n, "income": income, "vote": vote}


def ar_data(seed: int = 0, t: int = 60, k: int = 2) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    coeffs = np.array([0.5, -0.3])[:k]
    y = np.zeros(t)
    for i in range(k, t):
        y[i] = 1.0 + y[i - k:i][::-1] @ coeffs + rng.normal(0, 0.5)
    return {"K": k, "T": t, "y": y}


def arma_data(seed: int = 0, t: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    y = np.zeros(t)
    err_prev = 0.0
    for i in range(1, t):
        err = rng.normal(0, 0.5)
        y[i] = 0.5 + 0.6 * y[i - 1] + 0.3 * err_prev + err
        err_prev = err
    return {"T": t, "y": y}


def garch_data(seed: int = 0, t: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    y = np.zeros(t)
    sigma = 1.0
    for i in range(1, t):
        sigma = np.sqrt(0.2 + 0.3 * y[i - 1] ** 2 + 0.4 * sigma ** 2)
        y[i] = 0.1 + sigma * rng.standard_normal()
    return {"T": t, "y": y, "sigma1": 1.0}


def dogs_data(seed: int = 0, n_dogs: int = 8, n_trials: int = 12) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    y = np.zeros((n_dogs, n_trials))
    for j in range(n_dogs):
        n_avoid, n_shock = 0.0, 0.0
        for t in range(n_trials):
            p = 1.0 / (1.0 + np.exp(-(1.0 - 0.3 * n_avoid + 0.1 * n_shock)))
            shock = rng.uniform() < p
            y[j, t] = float(shock)
            if shock:
                n_shock += 1
            else:
                n_avoid += 1
    return {"n_dogs": n_dogs, "n_trials": n_trials, "y": y}


def hmm_data(seed: int = 0, n: int = 40, k: int = 2) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    means = np.array([3.0, 10.0])
    states = np.zeros(n, dtype=int)
    for i in range(1, n):
        stay = rng.uniform() < 0.8
        states[i] = states[i - 1] if stay else 1 - states[i - 1]
    y = means[states] + rng.normal(0, 1.0, size=n)
    return {"N": n, "K": k, "y": y}


def gauss_mix_data(seed: int = 0, n: int = 60) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    z = rng.binomial(1, 0.4, size=n)
    y = np.where(z == 1, rng.normal(-1.5, 0.7, size=n), rng.normal(1.5, 0.7, size=n))
    return {"N": n, "y": y}


def gp_data(seed: int = 0, n: int = 20) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 10, n)
    y = np.sin(x) + rng.normal(0, 0.2, size=n)
    return {"N": n, "x": x, "y": y}


def lotka_volterra_data(seed: int = 0, n: int = 20) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    ts = np.linspace(1.0, 20.0, n)
    y = np.abs(np.stack([10 + 5 * np.sin(ts / 3), 5 + 3 * np.cos(ts / 3)], axis=1)
               + rng.normal(0, 0.5, size=(n, 2)))
    return {"N": n, "ts": ts, "y_init": np.array([10.0, 5.0]), "y": y}


def one_comp_data(seed: int = 0, n: int = 15) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    ts = np.linspace(0.5, 10.0, n)
    y = 10.0 * np.exp(-0.3 * ts) + np.abs(rng.normal(0, 0.1, size=n))
    return {"N": n, "ts": ts, "y_obs": y}


def diamonds_data(seed: int = 0, n: int = 50) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    carat = rng.uniform(0.2, 2.0, size=n)
    price = 2.0 + 4.0 * carat + rng.normal(0, 0.8, size=n)
    return {"N": n, "price": price, "carat": carat}


def poisson_data(seed: int = 0, n: int = 50) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, size=n)
    y = rng.poisson(np.exp(0.5 + 0.7 * x))
    return {"N": n, "y": y.astype(float), "x": x}


def seeds_data(seed: int = 0, n: int = 20) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    trials = rng.integers(10, 60, size=n)
    x1 = rng.binomial(1, 0.5, size=n).astype(float)
    probs = 1.0 / (1.0 + np.exp(-(-0.5 + 1.0 * x1)))
    r = rng.binomial(trials, probs)
    return {"N": n, "n": trials.astype(float), "r": r.astype(float), "x1": x1}


def gauss_mix_enum_data(seed: int = 0, n: int = 8) -> Dict[str, Any]:
    """Two well-separated Gaussian clusters; ``n`` stays small because the
    enumerated formulation's joint assignment table is ``2 ** n``."""
    rng = np.random.default_rng(seed)
    component = rng.binomial(1, 0.4, size=n)
    y = np.where(component == 0,
                 rng.normal(-2.0, 0.7, size=n),
                 rng.normal(2.0, 0.7, size=n))
    return {"N": n, "y": y}


def zip_poisson_data(seed: int = 0, n: int = 8) -> Dict[str, Any]:
    """Occupancy-style zero-inflated counts (background rate 0.1)."""
    rng = np.random.default_rng(seed)
    active = rng.binomial(1, 0.6, size=n)
    y = rng.poisson(0.1 + active * 4.0)
    return {"N": n, "y": y.astype(float)}


def hmm_k_data(seed: int = 0, t: int = 200, k: int = 4) -> Dict[str, Any]:
    """A K-state sticky HMM at lengths only the factorized engine can run.

    The joint assignment table would hold ``k ** t`` entries (``4 ** 200`` at
    the defaults — unrepresentable); chain elimination runs it in
    ``O(T * K^2)``.  Emission means are spaced so states are identifiable;
    ``mu0`` carries the prior locations to both formulations.
    """
    rng = np.random.default_rng(seed)
    transition = np.full((k, k), 0.3 / max(k - 1, 1))
    np.fill_diagonal(transition, 0.7)
    initial = np.full(k, 1.0 / k)
    mu0 = np.linspace(-3.0, 3.0, k)
    state = rng.choice(k, p=initial)
    states, y = [], []
    for _ in range(t):
        states.append(state)
        y.append(rng.normal(mu0[state], 0.5))
        state = rng.choice(k, p=transition[state])
    return {"T": t, "K": k, "y": np.array(y), "Gamma": transition,
            "rho": initial, "mu0": mu0}


def factorial_hmm_data(seed: int = 0, t: int = 100) -> Dict[str, Any]:
    """Two coupled binary chains observed only through their summed emission.

    The joint assignment table would hold ``4 ** t`` entries (``4 ** 100``
    at the default — far beyond 10^50); the general contraction engine
    eliminates the ladder factor graph in cost linear in ``t``.
    """
    rng = np.random.default_rng(seed)
    g1 = np.array([[0.9, 0.1], [0.2, 0.8]])
    g2 = np.array([[0.7, 0.3], [0.4, 0.6]])
    rho1 = np.array([0.6, 0.4])
    rho2 = np.array([0.5, 0.5])
    mu1 = np.array([-1.0, 1.0])
    mu2 = np.array([-0.5, 0.5])
    s1 = rng.choice(2, p=rho1)
    s2 = rng.choice(2, p=rho2)
    y = []
    for _ in range(t):
        y.append(rng.normal(mu1[s1] + mu2[s2], 0.5))
        s1 = rng.choice(2, p=g1[s1])
        s2 = rng.choice(2, p=g2[s2])
    return {"T": t, "y": np.array(y), "G1": g1, "G2": g2,
            "rho1": rho1, "rho2": rho2}


def tree_mix_data(seed: int = 0, n: int = 200, coupling: float = 0.6) -> Dict[str, Any]:
    """A random tree of binary component labels with Ising-style coupling.

    ``parent[i] < i`` (1-based; ``parent[1]`` is unused), so the upward
    belief-propagation twin can sweep nodes in reverse index order.  The
    joint table would hold ``2 ** n`` rows (``2 ** 200`` at the default);
    tree elimination is linear in ``n``.
    """
    rng = np.random.default_rng(seed)
    parent = np.ones(n, dtype=int)
    for i in range(1, n):
        parent[i] = rng.integers(1, i + 1)       # uniform among earlier nodes
    # Sample labels down the tree with the flip probability implied by the
    # coupling potential, then emit around well-separated means.
    stay = np.exp(coupling) / (np.exp(coupling) + np.exp(-coupling))
    z = np.zeros(n, dtype=int)
    z[0] = rng.integers(0, 2)
    for i in range(1, n):
        same = rng.random() < stay
        z[i] = z[parent[i] - 1] if same else 1 - z[parent[i] - 1]
    mu = np.array([-2.0, 2.0])
    y = rng.normal(mu[z], 0.8)
    return {"N": n, "y": y, "parent": parent, "coupling": coupling,
            "rho": np.array([0.5, 0.5])}


def gauss_mix_enum_large_data(seed: int = 0, n: int = 500) -> Dict[str, Any]:
    """The mixture workload at a length whose joint table (``2 ** n``) is
    unrepresentable — only per-element (factorized) enumeration can run it."""
    return gauss_mix_enum_data(seed=seed, n=n)


def hmm_enum_data(seed: int = 0, t: int = 6) -> Dict[str, Any]:
    """A short 2-state HMM path; enumeration sums all ``2 ** t`` paths."""
    rng = np.random.default_rng(seed)
    transition = np.array([[0.8, 0.2], [0.3, 0.7]])
    initial = np.array([0.5, 0.5])
    means = np.array([-1.0, 1.0])
    state = rng.choice(2, p=initial)
    states, y = [], []
    for _ in range(t):
        states.append(state)
        y.append(rng.normal(means[state], 0.5))
        state = rng.choice(2, p=transition[state])
    return {"T": t, "y": np.array(y), "Gamma": transition, "rho": initial}
