"""Recovering discrete posteriors after marginalized inference.

NUTS/HMC/VI run on the *marginalized* potential, so their draws cover only
the continuous parameters.  :func:`infer_discrete` is the post-pass that puts
the integers back: for every retained draw it re-evaluates the per-assignment
log joints (one vectorized model execution per draw), normalizes them into a
posterior over the joint assignment table conditional on that draw's
continuous parameters, and reads out

* ``"marginal"`` — per-element marginal probabilities (the mixture
  responsibilities), with the per-element marginal mode as the integer draw;
* ``"max"`` — the joint MAP assignment per draw (Viterbi-style);
* ``"sample"`` — one seeded exact sample from the joint assignment posterior
  per draw (the analogue of Pyro's ``infer_discrete``).

The RNG for ``"sample"`` is derived from ``[seed, 0x454E554D]`` ("ENUM"), so
recovering discrete sites never perturbs any engine's draw streams and is
reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np
from scipy import special as sps

from repro.enum.plan import EnumerationPlan

MODES = ("marginal", "max", "sample")


def discrete_rng(seed: int) -> np.random.Generator:
    """The dedicated RNG of the ``"sample"`` mode (domain-tagged stream)."""
    return np.random.default_rng([seed, 0x454E554D])


@dataclass
class DiscretePosterior:
    """Per-draw discrete posteriors recovered by :func:`infer_discrete`.

    ``draws[name]`` is a ``(num_chains, num_draws, *event_shape)`` array of
    integer-valued site draws; ``marginals[name]`` adds a trailing support
    axis ``(..., K)`` of per-element probabilities; ``support[name]`` maps the
    trailing axis back to the site's actual values.
    """

    mode: str
    draws: Dict[str, np.ndarray] = field(default_factory=dict)
    marginals: Dict[str, np.ndarray] = field(default_factory=dict)
    support: Dict[str, np.ndarray] = field(default_factory=dict)

    def mean_marginals(self) -> Dict[str, np.ndarray]:
        """Posterior-averaged marginals per site: ``(*event_shape, K)``."""
        return {name: probs.mean(axis=(0, 1))
                for name, probs in self.marginals.items()}


def infer_discrete(potential, unconstrained: np.ndarray, mode: str = "marginal",
                   seed: int = 0) -> DiscretePosterior:
    """Discrete posteriors for a batch of unconstrained continuous draws.

    Parameters
    ----------
    potential:
        An enumerated :class:`repro.infer.Potential` (``enum_plan`` set); its
        ``assignment_log_joints`` supplies the per-assignment table.
    unconstrained:
        ``(num_chains, num_draws, dim)`` (or ``(num_draws, dim)``) matrix of
        unconstrained states, e.g. ``posterior.unconstrained``.
    """
    if mode not in MODES:
        raise ValueError(f"unknown infer_discrete mode {mode!r}; expected one of {MODES}")
    plan: Optional[EnumerationPlan] = getattr(potential, "enum_plan", None)
    if plan is None:
        raise ValueError(
            "infer_discrete needs an enumerated potential (built with "
            'enumerate="parallel"); this model has no discrete latent sites')
    z = np.asarray(unconstrained, dtype=float)
    if z.ndim == 2:
        z = z[None]
    if z.ndim != 3:
        raise ValueError(
            f"expected (num_chains, num_draws, dim) unconstrained states, got shape {z.shape}")
    chains, draws = z.shape[0], z.shape[1]
    rng = discrete_rng(seed)

    result = DiscretePosterior(mode=mode)
    values: Dict[str, np.ndarray] = {
        site.name: np.empty((chains, draws) + site.event_shape)
        for site in plan.sites
    }
    marginals: Dict[str, np.ndarray] = {
        site.name: np.empty((chains, draws) + site.event_shape + (site.cardinality,))
        for site in plan.sites
    }
    for c in range(chains):
        for d in range(draws):
            log_joints = potential.assignment_log_joints(z[c, d])
            weights = np.exp(log_joints - sps.logsumexp(log_joints))
            weights /= weights.sum()
            if mode == "max":
                assignment = plan.decode(int(np.argmax(weights)))
            elif mode == "sample":
                assignment = plan.decode(int(rng.choice(plan.table_size, p=weights)))
            else:
                assignment = None
            for site in plan.sites:
                probs = plan.element_marginals(site.name, weights)
                marginals[site.name][c, d] = probs
                if assignment is not None:
                    values[site.name][c, d] = assignment[site.name]
                else:
                    # Marginal mode: per-element marginal mode (first support
                    # value wins ties, deterministically).
                    values[site.name][c, d] = site.support[np.argmax(probs, axis=-1)]

    for site in plan.sites:
        result.draws[site.name] = values[site.name]
        result.marginals[site.name] = marginals[site.name]
        result.support[site.name] = np.array(site.support)
    return result
