"""Recovering discrete posteriors after marginalized inference.

NUTS/HMC/VI run on the *marginalized* potential, so their draws cover only
the continuous parameters.  :func:`infer_discrete` is the post-pass that puts
the integers back: for every retained draw it re-evaluates the discrete
posterior conditional on that draw's continuous parameters and reads out

* ``"marginal"`` — per-element marginal probabilities (the mixture
  responsibilities), with the per-element marginal mode as the integer draw;
* ``"max"`` — the joint MAP assignment per draw (Viterbi-style);
* ``"sample"`` — one seeded exact sample from the joint assignment posterior
  per draw (the analogue of Pyro's ``infer_discrete``).

On a **factorized** potential the per-draw posterior is never materialized as
a joint table: independent elements are exact categoricals in their ``(K,)``
log factors, and chain-structured sites run the classic trio on their unary/
pairwise potentials — forward-**backward** for marginals, max-product with
backtracking (Viterbi) for MAP, forward-filter backward-sampling for exact
samples — all ``O(T * K^2)`` per draw.  On a **contract** potential (general
tensor variable elimination) the same trio generalizes to the elimination
tree: a backward pass over the recorded elimination steps calibrates every
clique (marginals), max-product with reverse-order backtracking gives the
joint MAP, and reverse-order conditional sampling from the sum-product
cliques gives exact joint samples — cost bounded by the greedy contraction
cost, never the joint table.  Joint-table potentials keep the original path
(one vectorized table execution per draw, softmax over rows).

The RNG for ``"sample"`` is derived from ``[seed, 0x454E554D]`` ("ENUM"), so
recovering discrete sites never perturbs any engine's draw streams and is
reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
from scipy import special as sps

from repro.enum.plan import EnumerationPlan

MODES = ("marginal", "max", "sample")


def discrete_rng(seed: int) -> np.random.Generator:
    """The dedicated RNG of the ``"sample"`` mode (domain-tagged stream)."""
    return np.random.default_rng([seed, 0x454E554D])


@dataclass
class DiscretePosterior:
    """Per-draw discrete posteriors recovered by :func:`infer_discrete`.

    ``draws[name]`` is a ``(num_chains, num_draws, *event_shape)`` array of
    integer-valued site draws; ``marginals[name]`` adds a trailing support
    axis ``(..., K)`` of per-element probabilities; ``support[name]`` maps the
    trailing axis back to the site's actual values.
    """

    mode: str
    draws: Dict[str, np.ndarray] = field(default_factory=dict)
    marginals: Dict[str, np.ndarray] = field(default_factory=dict)
    support: Dict[str, np.ndarray] = field(default_factory=dict)

    def mean_marginals(self) -> Dict[str, np.ndarray]:
        """Posterior-averaged marginals per site: ``(*event_shape, K)``."""
        return {name: probs.mean(axis=(0, 1))
                for name, probs in self.marginals.items()}


# ----------------------------------------------------------------------
# chain-structured posteriors (forward-backward / Viterbi / FFBS)
# ----------------------------------------------------------------------
def _chain_messages(unary: np.ndarray, pairwise: np.ndarray) -> np.ndarray:
    """Forward (filtering) log messages ``alpha``: ``(T, K)``."""
    t_len = unary.shape[0]
    alpha = np.empty_like(unary)
    alpha[0] = unary[0]
    for t in range(1, t_len):
        alpha[t] = sps.logsumexp(alpha[t - 1][:, None] + pairwise[t - 1], axis=0) \
            + unary[t]
    return alpha


def chain_marginals(unary: np.ndarray, pairwise: np.ndarray) -> np.ndarray:
    """Per-element posterior marginals of a chain: ``(T, K)`` probabilities.

    The forward-backward algorithm on the chain's log potentials — the exact
    smoothing marginals without materializing the ``K^T`` path table.
    """
    t_len = unary.shape[0]
    alpha = _chain_messages(unary, pairwise)
    beta = np.zeros_like(unary)
    for t in range(t_len - 2, -1, -1):
        beta[t] = sps.logsumexp(pairwise[t] + (unary[t + 1] + beta[t + 1])[None, :],
                                axis=1)
    log_marg = alpha + beta
    log_marg -= sps.logsumexp(log_marg, axis=1, keepdims=True)
    return np.exp(log_marg)


def chain_map(unary: np.ndarray, pairwise: np.ndarray) -> np.ndarray:
    """Joint MAP path of a chain (Viterbi): ``(T,)`` support indices."""
    t_len = unary.shape[0]
    score = unary[0].copy()
    back = np.empty((t_len - 1, unary.shape[1]), dtype=int)
    for t in range(1, t_len):
        cand = score[:, None] + pairwise[t - 1]
        back[t - 1] = np.argmax(cand, axis=0)
        score = cand[back[t - 1], np.arange(unary.shape[1])] + unary[t]
    path = np.empty(t_len, dtype=int)
    path[-1] = int(np.argmax(score))
    for t in range(t_len - 2, -1, -1):
        path[t] = back[t][path[t + 1]]
    return path


def chain_sample(unary: np.ndarray, pairwise: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
    """One exact posterior path sample (forward filter, backward sample)."""
    t_len, k = unary.shape
    alpha = _chain_messages(unary, pairwise)
    path = np.empty(t_len, dtype=int)
    logits = alpha[-1] - sps.logsumexp(alpha[-1])
    path[-1] = int(rng.choice(k, p=np.exp(logits)))
    for t in range(t_len - 2, -1, -1):
        logits = alpha[t] + pairwise[t][:, path[t + 1]]
        logits -= sps.logsumexp(logits)
        path[t] = int(rng.choice(k, p=np.exp(logits)))
    return path


def _fill_factorized_draw(bundle, plan: EnumerationPlan, mode: str,
                          rng: np.random.Generator,
                          values: Dict[str, np.ndarray],
                          marginals: Dict[str, np.ndarray],
                          c: int, d: int) -> None:
    """One draw's discrete posterior from a :class:`~repro.enum.FactorBundle`.

    Deterministic component order — sites in plan order, independent block
    first, then that site's chains — so the ``"sample"`` RNG stream is
    reproducible for a fixed seed.
    """
    chains_by_site: Dict[str, list] = {}
    for chain in bundle.chains:
        chains_by_site.setdefault(chain[0], []).append(chain)
    for site in plan.sites:
        name = site.name
        numel = max(site.numel, 1)
        flat_vals = np.empty(numel)
        flat_marg = np.empty((numel, site.cardinality))
        indep = bundle.independent.get(name)
        if indep is not None:
            idx, factors = indep
            probs = np.exp(factors - sps.logsumexp(factors, axis=1, keepdims=True))
            flat_marg[idx] = probs
            if mode == "sample":
                picks = np.array([rng.choice(site.cardinality, p=row / row.sum())
                                  for row in probs], dtype=int)
            else:
                # MAP of independent elements is the per-element argmax, which
                # coincides with the "marginal" mode convention.
                picks = np.argmax(probs, axis=1)
            flat_vals[idx] = site.support[picks]
        for _, order, unary, pairwise in chains_by_site.get(name, []):
            probs = chain_marginals(unary, pairwise)
            flat_marg[np.asarray(order)] = probs
            if mode == "max":
                picks = chain_map(unary, pairwise)
            elif mode == "sample":
                picks = chain_sample(unary, pairwise, rng)
            else:
                picks = np.argmax(probs, axis=1)
            flat_vals[np.asarray(order)] = site.support[picks]
        values[name][c, d] = flat_vals.reshape(site.event_shape)
        marginals[name][c, d] = flat_marg.reshape(
            site.event_shape + (site.cardinality,))


def _fill_contract_draw(bundle, plan: EnumerationPlan, mode: str,
                        rng: np.random.Generator,
                        values: Dict[str, np.ndarray],
                        marginals: Dict[str, np.ndarray],
                        c: int, d: int) -> None:
    """One draw's discrete posterior from a calibrated elimination tree.

    ``bundle`` is a :class:`~repro.enum.contract.ContractFactors`; its
    backward pass over the elimination steps yields exact per-variable
    marginals, the joint MAP, and exact joint samples without ever forming
    the assignment table.  The ``"sample"`` RNG stream is reproducible: the
    bundle samples variables in reverse elimination order, and draws are
    processed in ``(chain, draw)`` order.
    """
    marg = bundle.marginals()
    if mode == "max":
        assign = bundle.map_assignment()
    elif mode == "sample":
        assign = bundle.sample(rng)
    else:
        assign = None
    for site in plan.sites:
        name = site.name
        numel = max(site.numel, 1)
        flat_vals = np.empty(numel)
        flat_marg = np.empty((numel, site.cardinality))
        for n in range(numel):
            probs = marg[(name, n)]
            flat_marg[n] = probs
            pick = assign[(name, n)] if assign is not None else int(np.argmax(probs))
            flat_vals[n] = site.support[pick]
        values[name][c, d] = flat_vals.reshape(site.event_shape)
        marginals[name][c, d] = flat_marg.reshape(
            site.event_shape + (site.cardinality,))


def infer_discrete(potential, unconstrained: np.ndarray, mode: str = "marginal",
                   seed: int = 0) -> DiscretePosterior:
    """Discrete posteriors for a batch of unconstrained continuous draws.

    Parameters
    ----------
    potential:
        An enumerated :class:`repro.infer.Potential` (``enum_plan`` set); its
        ``assignment_log_joints`` supplies the per-assignment table.
    unconstrained:
        ``(num_chains, num_draws, dim)`` (or ``(num_draws, dim)``) matrix of
        unconstrained states, e.g. ``posterior.unconstrained``.
    """
    if mode not in MODES:
        raise ValueError(f"unknown infer_discrete mode {mode!r}; expected one of {MODES}")
    plan: Optional[EnumerationPlan] = getattr(potential, "enum_plan", None)
    if plan is None:
        raise ValueError(
            "infer_discrete needs an enumerated potential (built with "
            'enumerate="parallel"); this model has no discrete latent sites')
    z = np.asarray(unconstrained, dtype=float)
    if z.ndim == 2:
        z = z[None]
    if z.ndim != 3:
        raise ValueError(
            f"expected (num_chains, num_draws, dim) unconstrained states, got shape {z.shape}")
    chains, draws = z.shape[0], z.shape[1]
    rng = discrete_rng(seed)

    result = DiscretePosterior(mode=mode)
    values: Dict[str, np.ndarray] = {
        site.name: np.empty((chains, draws) + site.event_shape)
        for site in plan.sites
    }
    marginals: Dict[str, np.ndarray] = {
        site.name: np.empty((chains, draws) + site.event_shape + (site.cardinality,))
        for site in plan.sites
    }
    # Structured (factorized/contract) potentials never materialize the
    # joint table: the backward pass runs per component — or over the
    # elimination tree — on the draw's log factors instead.  The strategy
    # resolves lazily, so gate on the capability and let the first
    # factorized_factors call decide (it returns None for joint-table
    # potentials, including never-evaluated ones that resolve right here).
    structured = hasattr(potential, "factorized_factors") \
        and getattr(potential, "enum_plan", None) is not None
    for c in range(chains):
        for d in range(draws):
            if structured:
                bundle = potential.factorized_factors(z[c, d])
                if bundle is not None:
                    if hasattr(bundle, "steps"):
                        _fill_contract_draw(bundle, plan, mode, rng, values,
                                            marginals, c, d)
                    else:
                        _fill_factorized_draw(bundle, plan, mode, rng, values,
                                              marginals, c, d)
                    continue
                # the potential demoted itself mid-pass; use the table
                structured = False
            log_joints = potential.assignment_log_joints(z[c, d])
            weights = np.exp(log_joints - sps.logsumexp(log_joints))
            weights /= weights.sum()
            if mode == "max":
                assignment = plan.decode(int(np.argmax(weights)))
            elif mode == "sample":
                assignment = plan.decode(int(rng.choice(plan.table_size, p=weights)))
            else:
                assignment = None
            for site in plan.sites:
                probs = plan.element_marginals(site.name, weights)
                marginals[site.name][c, d] = probs
                if assignment is not None:
                    values[site.name][c, d] = assignment[site.name]
                else:
                    # Marginal mode: per-element marginal mode (first support
                    # value wins ties, deterministically).
                    values[site.name][c, d] = site.support[np.argmax(probs, axis=-1)]

    for site in plan.sites:
        result.draws[site.name] = values[site.name]
        result.marginals[site.name] = marginals[site.name]
        result.support[site.name] = np.array(site.support)
    return result
