"""Factorized enumeration: plate-aware marginalization and variable elimination.

The joint assignment table of :class:`~repro.enum.plan.EnumerationPlan` is
exact but exponential: an array site ``int z[N]`` with per-element support
``K`` contributes ``K ** N`` table rows.  Hand marginalization — the
``log_sum_exp`` algebra Stan forces on users — is ``O(N * K)`` for mixtures
and ``O(T * K^2)`` for HMMs, because the per-element (or per-transition)
factors are conditionally independent given the continuous parameters.  This
module recovers those asymptotics automatically, the way funsor-style tensor
variable elimination does:

1.  **Dependency analysis** (:func:`analyze_factorization`): the model runs
    once with every discrete site represented by *per-element leaf tensors*
    (the runtime's ``_index`` returns the element's own leaf), so walking the
    autodiff graph of each collected log-prob term tells exactly which
    elements it touched — the same exact graph-walk classification the joint
    engine uses, refined to element granularity.  Terms touching one element
    are unary factors; terms touching two elements of the same site are
    pairwise factors and induce an edge in the element-interaction graph.
    Connected components must be isolated vertices (independent elements) or
    simple paths (chains); anything else — a term using a whole array
    (``sum(z)``), coupling two sites, or touching three or more elements —
    raises :class:`FactorizationError` and the caller falls back to the
    joint table.

2.  **Sum-product evaluation** (:class:`FactorizationPlan`): one model
    execution with a *periodic grid* substituted at each site — batch axis of
    ``B = max(K_s or K_s^2)`` rows, where element ``n``'s column cycles
    through its support so that rows ``0..K-1`` (or ``0..K^2-1`` for the
    two-coloring of chain elements) enumerate every needed local assignment.
    The collected terms are then *contracted* instead of summed into a joint
    table: independent elements reduce with one ``logsumexp`` per element
    (``O(N * K)``), chains reduce by eliminating one element at a time with a
    logsumexp-matmul recursion — the forward algorithm emerges as the
    elimination order, ``O(T * K^2)``.

The contraction is built from differentiable ops, so HMC/NUTS gradients flow
through it unchanged; :meth:`FactorizationPlan.posterior_factors` exposes the
same per-element/chain factors as NumPy arrays for the ``infer_discrete``
backward pass (marginals / Viterbi MAP / forward-filter backward-sample
without ever materializing the joint table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.enum.plan import EnumerationError, EnumerationPlan

#: cap on the factorized batch axis (``max_s K_s`` or ``K_s^2``); a chain
#: whose squared cardinality exceeds this does not profit from elimination.
DEFAULT_MAX_BATCH_ROWS = 10_000


class FactorizationError(EnumerationError):
    """The discrete structure does not factorize; joint-table fallback applies."""


@dataclass(frozen=True)
class TermRole:
    """Classification of one collected log-prob term (by execution position)."""

    position: int
    name: Optional[str]
    kind: str                      # "const" | "site_prior" | "unary" | "pair"
    site: Optional[str] = None
    elems: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CollectedTerm:
    """Strategy-neutral classification of one collected log-prob term.

    The shared first stage of both analyzers (the strict factorized engine
    and the general contraction planner of :mod:`repro.enum.contract`):
    ``kind`` is ``"const"`` (touches no enumerated element),
    ``"site_prior"`` (a site's own declaration prior, elementwise by
    construction) or ``"factor"`` (touches the enumerated elements in
    ``scope``, sorted by site plan-order then element index — any arity,
    cross-site allowed).
    """

    position: int
    name: Optional[str]
    kind: str                      # "const" | "site_prior" | "factor"
    site: Optional[str] = None
    scope: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class ChainBlock:
    """One path component of a site's element-interaction graph."""

    site: str
    order: Tuple[int, ...]         # elements in path-traversal order
    #: 2-coloring along the path: color 0 rides the ``r // K`` digit of the
    #: batch row, color 1 the ``r % K`` digit — adjacent elements always have
    #: different colors, so every pairwise factor is a full ``(K, K)`` block.
    colors: Dict[int, int] = field(default_factory=dict)


def _walk_elements(term: Tensor, leaf_ids: Mapping[int, Tuple[str, int]],
                   array_ids: Mapping[int, str]) -> Tuple[set, set]:
    """Element refs and whole-array sites reachable in a term's graph."""
    elems: set = set()
    whole: set = set()
    stack: List[Tensor] = [term]
    seen: set = set()
    while stack:
        node = stack.pop()
        key = id(node)
        if key in seen:
            continue
        seen.add(key)
        ref = leaf_ids.get(key)
        if ref is not None:
            elems.add(ref)
        site = array_ids.get(key)
        if site is not None:
            whole.add(site)
        stack.extend(node.parents)
    return elems, whole


def _path_components(numel: int, edges: set) -> Tuple[List[Tuple[int, ...]], List[int]]:
    """Split elements into path-ordered chain components and isolated vertices.

    Raises :class:`FactorizationError` if any component is not a simple path
    (a cycle, or an element coupled to three or more neighbours).
    """
    adj: Dict[int, set] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    for node, nbrs in adj.items():
        if len(nbrs) > 2:
            raise FactorizationError(
                f"element {node} interacts with {len(nbrs)} other elements "
                f"({sorted(nbrs)}); variable elimination here handles "
                "chain-structured coupling only")
    chains: List[Tuple[int, ...]] = []
    visited: set = set()
    endpoints = sorted(n for n, nbrs in adj.items() if len(nbrs) == 1)
    for start in endpoints:
        if start in visited:
            continue
        path = [start]
        visited.add(start)
        prev, cur = None, start
        while True:
            nxt = [n for n in adj[cur] if n != prev]
            if not nxt:
                break
            prev, cur = cur, nxt[0]
            path.append(cur)
            visited.add(cur)
        chains.append(tuple(path))
    cyclic = set(adj) - visited
    if cyclic:
        raise FactorizationError(
            f"elements {sorted(cyclic)} form a coupling cycle; only "
            "chain-structured (acyclic path) coupling is eliminable")
    independent = [n for n in range(numel) if n not in adj]
    return chains, independent


class FactorizationPlan:
    """The factorized evaluation layout for one enumerated model.

    Built by :func:`analyze_factorization`.  Holds the per-term roles (in
    execution order), the chain/independent partition per site, and the
    periodic substitution grids; :meth:`contract` turns the terms collected
    from one gridded model execution into the exact marginal log joint.
    """

    def __init__(self, plan: EnumerationPlan, terms: List[TermRole],
                 chains: List[ChainBlock],
                 independent: Dict[str, Tuple[int, ...]],
                 max_batch_rows: Optional[int] = None):
        self.plan = plan
        self.terms = terms
        self.chains = chains
        self.independent = independent
        self._chain_sites = {c.site for c in chains}
        self._colors: Dict[Tuple[str, int], int] = {}
        for chain in chains:
            for elem, color in chain.colors.items():
                self._colors[(chain.site, elem)] = color
        cap = DEFAULT_MAX_BATCH_ROWS if max_batch_rows is None else int(max_batch_rows)
        rows, worst = 1, None
        for site in plan.sites:
            if site.name in self._chain_sites:
                need, why = site.cardinality ** 2, f"K^2 = {site.cardinality}^2 (chain)"
            else:
                need, why = site.cardinality, f"K = {site.cardinality}"
            if need > rows:
                rows, worst = need, f"site {site.name!r} needs {why}"
        if rows > cap:
            raise FactorizationError(
                f"factorized batch needs {rows} rows ({worst}), exceeding the "
                f"cap of {cap}")
        self.batch_rows = int(rows)
        self._grid_cache: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # description / bookkeeping
    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = []
        for site in self.plan.sites:
            k = site.cardinality
            n_chain = sum(len(c.order) for c in self.chains if c.site == site.name)
            n_indep = len(self.independent.get(site.name, ()))
            if n_chain:
                parts.append(f"{site.name}: chain of {n_chain} elements "
                             f"(O(T*K^2), K={k})" +
                             (f" + {n_indep} independent" if n_indep else ""))
            else:
                parts.append(f"{site.name}: {n_indep} independent elements (O(N*K), K={k})")
        return "; ".join(parts)

    def __repr__(self) -> str:
        return f"FactorizationPlan({self.describe()}; batch_rows={self.batch_rows})"

    #: resolved-strategy tag read by the potential / metadata stamping.
    strategy = "factorized"

    def cost_estimate(self) -> int:
        """Total contraction table cost (entries summed over eliminations).

        Comparable with :meth:`repro.enum.contract.ContractionPlan.cost_estimate`:
        each independent element contributes its ``K``-entry table, each chain
        the ``K^2`` tables of its ``T - 1`` eliminations plus the final ``K``.
        """
        total = 0
        for site in self.plan.sites:
            total += len(self.independent.get(site.name, ())) * site.cardinality
        for chain in self.chains:
            k = self.plan.site(chain.site).cardinality
            total += k + max(len(chain.order) - 1, 0) * k * k
        return int(total)

    def _color(self, site: str, elem: int) -> int:
        # independent elements share the color-1 (``r % K``) layout
        return self._colors.get((site, elem), 1)

    # ------------------------------------------------------------------
    # the substitution grids
    # ------------------------------------------------------------------
    def grids(self) -> Dict[str, np.ndarray]:
        """``{site: (batch_rows, numel)}`` periodic substitution values.

        Element ``n``'s column cycles through the site's support: color-1
        (and independent) elements as ``support[r % K]``, color-0 chain
        elements as ``support[(r // K) % K]`` — so rows ``0..K-1`` enumerate
        any single element and rows ``0..K^2-1`` enumerate any chain edge.
        """
        if self._grid_cache is None:
            out: Dict[str, np.ndarray] = {}
            r = np.arange(self.batch_rows)
            for site in self.plan.sites:
                k = site.cardinality
                cols = np.empty((self.batch_rows, max(site.numel, 1)))
                for n in range(max(site.numel, 1)):
                    if self._color(site.name, n) == 0:
                        cols[:, n] = site.support[(r // k) % k]
                    else:
                        cols[:, n] = site.support[r % k]
                out[site.name] = cols
            self._grid_cache = out
        return self._grid_cache

    # ------------------------------------------------------------------
    # term extraction
    # ------------------------------------------------------------------
    def check_terms(self, names: Sequence[Optional[str]]) -> None:
        """Verify a collected-term sequence matches the analysed structure."""
        if len(names) != len(self.terms):
            raise FactorizationError(
                f"model produced {len(names)} log-prob terms, the factorization "
                f"analysis saw {len(self.terms)} — assignment-dependent control "
                "flow cannot be factorized")
        for role, name in zip(self.terms, names):
            if role.name != name:
                raise FactorizationError(
                    f"term {role.position} is {name!r}, analysis saw {role.name!r}")

    @staticmethod
    def _reduce_rows(term: Tensor, rows: int) -> Tensor:
        """Sum a term's trailing (event) axes down to a ``(rows,)`` vector."""
        if term.data.ndim == 0:
            raise FactorizationError(
                "an assignment-dependent term evaluated to a scalar under the "
                "factorized grid (control flow collapsed the batch axis)")
        if term.data.shape[0] != rows:
            raise FactorizationError(
                f"term rides {term.data.shape[0]} rows, expected {rows}")
        if term.data.ndim > 1:
            return ops.sum_(term, axis=tuple(range(1, term.data.ndim)))
        return term

    def _site_matrices(self, terms: Sequence[Tensor], total_rows: int,
                       offset: int = 0) -> Tuple[Optional[Tensor], Dict[str, Tensor], Dict[Tuple[str, int, int], Tensor]]:
        """Shared extraction: constant total, per-site ``(rows, numel)`` unary
        factor blocks, and oriented ``(K, K)`` pairwise factors per chain edge.

        ``terms`` is the collected term list of one model execution.  Under
        the multi-chain tape the batch carries ``C * batch_rows`` rows
        chain-major; ``offset = c * batch_rows`` selects chain ``c``'s rows
        directly inside the ``getitem`` extractions (no per-term slicing), and
        a constant term that rides the batch axis (it depends on per-chain
        continuous values) contributes its ``offset`` row — within one
        chain's block every row holds the same constant.
        """
        const_total: Optional[Tensor] = None
        prior_blocks: Dict[str, Tensor] = {}
        unary_lists: Dict[str, Dict[int, List[Tensor]]] = {}
        pair_lists: Dict[Tuple[str, int, int], List[Tensor]] = {}
        for role, raw in zip(self.terms, terms):
            term = as_tensor(raw)
            if role.kind == "const":
                if term.data.ndim >= 1 and term.data.shape[0] == total_rows \
                        and total_rows > self.batch_rows:
                    reduced = self._reduce_rows(term, total_rows)
                    reduced = ops.getitem(reduced, offset)
                else:
                    reduced = term.sum() if term.data.ndim > 0 else term
                const_total = reduced if const_total is None else ops.add(const_total, reduced)
            elif role.kind == "site_prior":
                site = self.plan.site(role.site)
                numel = max(site.numel, 1)
                if term.data.ndim == 1:
                    term = ops.reshape(term, (term.data.shape[0], 1))
                elif term.data.ndim > 2:
                    term = ops.sum_(term, axis=tuple(range(2, term.data.ndim)))
                if term.data.shape != (total_rows, numel):
                    raise FactorizationError(
                        f"site prior {role.site!r} has shape {term.data.shape}, "
                        f"expected ({total_rows}, {numel})")
                prior_blocks[role.site] = term
            elif role.kind == "unary":
                reduced = self._reduce_rows(term, total_rows)
                unary_lists.setdefault(role.site, {}).setdefault(
                    role.elems[0], []).append(reduced)
            else:  # pair
                reduced = self._reduce_rows(term, total_rows)
                u, v = role.elems
                if self._color(role.site, u) != 0:
                    u, v = v, u
                pair_lists.setdefault((role.site, u, v), []).append(reduced)

        factor_views: Dict[str, Tensor] = {}
        for site in self.plan.sites:
            name = site.name
            numel = max(site.numel, 1)
            prior = prior_blocks.get(name)
            if prior is None:
                raise FactorizationError(
                    f"site {name!r} produced no declaration-prior term")
            per_elem = unary_lists.get(name, {})
            if per_elem:
                columns: List[Tensor] = []
                zero_col: Optional[Tensor] = None
                for n in range(numel):
                    parts = per_elem.get(n)
                    if parts is None:
                        if zero_col is None:
                            zero_col = as_tensor(np.zeros(total_rows))
                        columns.append(zero_col)
                        continue
                    total = parts[0]
                    for extra in parts[1:]:
                        total = ops.add(total, extra)
                    columns.append(total)
                unary = ops.stack(columns, axis=1)
                combined = ops.add(prior, unary)
            else:
                combined = prior
            factor_views[name] = combined

        pair_factors: Dict[Tuple[str, int, int], Tensor] = {}
        for (name, u, v), parts in pair_lists.items():
            k = self.plan.site(name).cardinality
            total = parts[0]
            for extra in parts[1:]:
                total = ops.add(total, extra)
            block = ops.getitem(total, np.arange(offset, offset + k * k))
            pair_factors[(name, u, v)] = ops.reshape(block, (k, k))
        return const_total, factor_views, pair_factors

    def _element_columns(self, name: str, combined: Tensor, elems: Sequence[int],
                         offset: int = 0) -> Tensor:
        """``(K, len(elems))`` per-element factors from a ``(rows, numel)`` block.

        All requested elements must share a color (the row-extraction
        pattern); callers split chain elements by color first.
        """
        site = self.plan.site(name)
        k = site.cardinality
        colors = {self._color(name, n) for n in elems}
        assert len(colors) == 1, "elements of one extraction must share a color"
        if colors.pop() == 0:
            row_idx = offset + np.arange(k) * k
        else:
            row_idx = offset + np.arange(k)
        return ops.getitem(combined, (row_idx[:, None], np.asarray(elems)[None, :]))

    # ------------------------------------------------------------------
    # the contraction (exact marginal log joint)
    # ------------------------------------------------------------------
    def contract(self, terms: Sequence[Tensor], offset: int = 0,
                 total_rows: Optional[int] = None) -> Tensor:
        """Exact marginal log joint (a scalar tensor) from collected terms.

        Independent elements reduce with one ``logsumexp`` per element;
        chains reduce with the logsumexp-matmul forward recursion (variable
        elimination in path order).  Deterministic accumulation order: the
        constant terms, then sites in plan order (independent block first,
        then each chain).  ``offset``/``total_rows`` address one chain's rows
        inside a multi-chain ``C * batch_rows`` tape.
        """
        const_total, factor_views, pair_factors = self._site_matrices(
            terms, total_rows or self.batch_rows, offset=offset)
        total = const_total if const_total is not None else as_tensor(0.0)

        chains_by_site: Dict[str, List[ChainBlock]] = {}
        for chain in self.chains:
            chains_by_site.setdefault(chain.site, []).append(chain)

        for site in self.plan.sites:
            name = site.name
            combined = factor_views[name]
            indep = self.independent.get(name, ())
            if indep:
                cols = self._element_columns(name, combined, indep, offset=offset)
                per_element = ops.logsumexp(cols, axis=0)
                total = ops.add(total, ops.sum_(per_element))
            for chain in chains_by_site.get(name, []):
                def col(elem):
                    return ops.reshape(
                        self._element_columns(name, combined, [elem], offset=offset),
                        (site.cardinality,))

                alpha = col(chain.order[0])
                for prev, cur in zip(chain.order, chain.order[1:]):
                    u, v = (prev, cur) if self._color(name, prev) == 0 else (cur, prev)
                    pair = pair_factors.get((name, u, v))
                    if pair is None:
                        raise FactorizationError(
                            f"chain edge ({prev}, {cur}) of site {name!r} has no "
                            "pairwise factor")
                    step = pair if u == prev else ops.transpose(pair)
                    alpha = ops.logsumexp(
                        ops.add(ops.reshape(alpha, (site.cardinality, 1)), step),
                        axis=0)
                    alpha = ops.add(alpha, col(cur))
                total = ops.add(total, ops.logsumexp(alpha))
        return total

    # ------------------------------------------------------------------
    # posterior factors (the infer_discrete backward pass)
    # ------------------------------------------------------------------
    def posterior_factors(self, terms: Sequence[Tensor], offset: int = 0) -> "FactorBundle":
        """NumPy per-element/chain log factors of one gridded execution.

        The discrete posterior conditional on the continuous draw factorizes
        the same way the density does: independent elements are categorical
        in their ``(K,)`` factor; each chain is a small chain-structured MRF
        with per-element unary ``(T, K)`` and per-edge pairwise
        ``(T-1, K, K)`` log potentials (oriented along the path), ready for
        forward-backward / Viterbi / backward sampling.
        """
        _, factor_views, pair_factors = self._site_matrices(
            terms, self.batch_rows, offset=offset)
        independent: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        chains: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]] = []
        for site in self.plan.sites:
            name = site.name
            combined = factor_views[name]
            indep = self.independent.get(name, ())
            if indep:
                cols = self._element_columns(name, combined, indep, offset=offset)
                independent[name] = (np.asarray(indep, dtype=int),
                                     np.array(cols.data).T)     # (n_i, K)
        for chain in self.chains:
            site = self.plan.site(chain.site)
            k = site.cardinality
            unary = np.empty((len(chain.order), k))
            combined = factor_views[chain.site]
            for i, elem in enumerate(chain.order):
                unary[i] = np.array(self._element_columns(
                    chain.site, combined, [elem], offset=offset).data).reshape(k)
            pairwise = np.empty((len(chain.order) - 1, k, k))
            for i, (prev, cur) in enumerate(zip(chain.order, chain.order[1:])):
                u, v = (prev, cur) if self._color(chain.site, prev) == 0 else (cur, prev)
                pair = pair_factors[(chain.site, u, v)]
                mat = np.array(pair.data)
                pairwise[i] = mat if u == prev else mat.T
            chains.append((chain.site, chain.order, unary, pairwise))
        return FactorBundle(independent=independent, chains=chains)


def reset_generated_site_names() -> None:
    """Reset the auto-generated site-name counters before a collection run.

    Term matching between the analysis execution and later gridded
    executions is positional *and* name-checked; anonymous ``observe``/
    ``factor`` sites draw from process-global counters, so both runs must
    start from the same state.
    """
    from repro.backends import runtime
    from repro.ppl.primitives import reset_site_counter

    reset_site_counter()
    runtime._FRESH_COUNTER[0] = 0


@dataclass
class FactorBundle:
    """Per-component log factors of one draw's discrete posterior."""

    #: ``{site: (element_indices, (n_i, K) log factors)}``
    independent: Dict[str, Tuple[np.ndarray, np.ndarray]]
    #: ``(site, path order, (T, K) unary, (T-1, K, K) pairwise)`` per chain
    chains: List[Tuple[str, Tuple[int, ...], np.ndarray, np.ndarray]]


def analyze_factorization(model: Callable, plan: EnumerationPlan,
                          model_args: Tuple = (), model_kwargs: Optional[Dict] = None,
                          observed: Optional[Dict[str, Any]] = None,
                          constrained: Optional[Mapping[str, Any]] = None,
                          rng_seed: int = 0,
                          max_batch_rows: Optional[int] = None,
                          telemetry=None) -> FactorizationPlan:
    """Partition a model's discrete elements into conditionally-independent blocks.

    Runs the model once with per-element leaf tensors substituted at every
    discrete site and classifies each collected log-prob term by walking its
    autodiff graph back to the leaves (see module docstring).  Raises
    :class:`FactorizationError` when the structure does not factorize —
    callers fall back to the joint assignment table.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, or ``None``) receives an
    ``enum.analyze`` span recording the outcome: the number of chain blocks
    and independent elements on success, or the classified failure (the span
    carries ``error=FactorizationError``; the caller records the fallback
    reason in its own ``enum.demote`` event).
    """
    from repro.obs import as_telemetry

    with as_telemetry(telemetry).span(
            "enum.analyze", sites=len(plan.sites),
            table_size=plan.table_size) as span:
        result = _analyze_factorization_impl(
            model, plan, model_args=model_args, model_kwargs=model_kwargs,
            observed=observed, constrained=constrained, rng_seed=rng_seed,
            max_batch_rows=max_batch_rows)
        span.set(strategy="factorized",
                 chain_blocks=len(result.chains),
                 independent_sites=sum(
                     1 for elems in result.independent.values() if elems))
        return result


def collect_term_structure(model: Callable, plan: EnumerationPlan,
                           model_args: Tuple = (),
                           model_kwargs: Optional[Dict] = None,
                           observed: Optional[Dict[str, Any]] = None,
                           constrained: Optional[Mapping[str, Any]] = None,
                           rng_seed: int = 0) -> List[CollectedTerm]:
    """Run the model once with per-element leaves and classify every term.

    The strategy-neutral first stage shared by :func:`analyze_factorization`
    and :func:`repro.enum.contract.analyze_contraction`: each collected
    log-prob term is walked back through the autodiff graph to the enumerated
    leaves it touches and recorded as a :class:`CollectedTerm`.  Raises
    :class:`FactorizationError` for structure *no* elimination strategy can
    handle: multi-dimensional sites, terms using a whole enumerated array
    (``sum(z)``), and declaration priors that depend on other sites.
    """
    from repro.ppl.primitives import FastLogDensityContext

    leaves: Dict[str, List[Tensor]] = {}
    substitution: Dict[str, Any] = dict(observed or {})
    substitution.update(constrained or {})
    for site in plan.sites:
        if len(site.event_shape) > 1:
            raise FactorizationError(
                f"site {site.name!r} has event shape {site.event_shape}; "
                "factorization handles scalar and 1-D array sites")
        els = [Tensor(float(site.support[0])) for _ in range(max(site.numel, 1))]
        if site.event_shape:
            assembled = ops.stack(els)
            assembled.enum_elements = els
        else:
            assembled = els[0]
        leaves[site.name] = els
        substitution[site.name] = assembled

    reset_generated_site_names()
    ctx = FastLogDensityContext(substitution=substitution,
                                rng=np.random.default_rng(rng_seed),
                                collect_names=True)
    with np.errstate(all="ignore"), ctx:
        model(*model_args, **(model_kwargs or {}))

    leaf_ids: Dict[int, Tuple[str, int]] = {}
    array_ids: Dict[int, str] = {}
    for site in plan.sites:
        for j, el in enumerate(leaves[site.name]):
            leaf_ids[id(el)] = (site.name, j)
        assembled = substitution[site.name]
        if getattr(assembled, "enum_elements", None) is not None:
            array_ids[id(assembled)] = site.name

    site_names = set(plan.site_names)
    site_order = {name: i for i, name in enumerate(plan.site_names)}
    collected: List[CollectedTerm] = []
    for pos, (raw, name) in enumerate(zip(ctx.log_prob_terms, ctx.term_names)):
        term = as_tensor(raw)
        elems, whole = _walk_elements(term, leaf_ids, array_ids)
        if name in site_names:
            # The site's own declaration prior: elementwise-independent by
            # construction (every enumerable family factorizes over elements),
            # so its ``(rows, numel)`` log-prob block is read column-wise.
            others = {s for s, _ in elems if s != name} | (whole - {name})
            if others:
                raise FactorizationError(
                    f"declaration prior of site {name!r} also depends on "
                    f"site(s) {sorted(others)}")
            collected.append(CollectedTerm(pos, name, "site_prior", site=name))
            continue
        if whole:
            raise FactorizationError(
                f"term {name!r} uses whole enumerated array(s) {sorted(whole)} "
                "(e.g. sum(z) or a vectorized statement over the full site), "
                "which does not factorize element-wise")
        if not elems:
            collected.append(CollectedTerm(pos, name, "const"))
            continue
        scope = tuple(sorted(elems, key=lambda ref: (site_order[ref[0]], ref[1])))
        collected.append(CollectedTerm(pos, name, "factor", scope=scope))
    return collected


def classify_factorization(collected: Sequence[CollectedTerm],
                           plan: EnumerationPlan,
                           max_batch_rows: Optional[int] = None
                           ) -> FactorizationPlan:
    """The strict classifier: collected terms -> independent/chain plan.

    Accepts only the shapes the proven sum-product engine handles — unary
    factors plus single-site pairwise coupling whose interaction graph is a
    disjoint union of simple paths.  Anything else (cross-site terms, 3-way
    coupling, branching, cycles) raises :class:`FactorizationError`; the
    general contraction planner picks those up when the strategy allows.
    """
    terms: List[TermRole] = []
    edges: Dict[str, set] = {name: set() for name in plan.site_names}
    for ct in collected:
        if ct.kind == "site_prior":
            terms.append(TermRole(ct.position, ct.name, "site_prior", site=ct.site))
            continue
        if ct.kind == "const":
            terms.append(TermRole(ct.position, ct.name, "const"))
            continue
        sites_hit = {s for s, _ in ct.scope}
        if len(sites_hit) > 1:
            raise FactorizationError(
                f"term {ct.name!r} couples elements across sites {sorted(sites_hit)}")
        site = sites_hit.pop()
        idx = tuple(sorted(j for _, j in ct.scope))
        if len(idx) == 1:
            terms.append(TermRole(ct.position, ct.name, "unary", site=site, elems=idx))
        elif len(idx) == 2:
            terms.append(TermRole(ct.position, ct.name, "pair", site=site, elems=idx))
            edges[site].add(idx)
        else:
            raise FactorizationError(
                f"term {ct.name!r} couples {len(idx)} elements {idx} of site "
                f"{site!r}; only unary and pairwise (chain) coupling is "
                "eliminable")

    chains: List[ChainBlock] = []
    independent: Dict[str, Tuple[int, ...]] = {}
    for site in plan.sites:
        numel = max(site.numel, 1)
        paths, isolated = _path_components(numel, edges[site.name])
        independent[site.name] = tuple(isolated)
        for path in paths:
            colors = {elem: i % 2 for i, elem in enumerate(path)}
            chains.append(ChainBlock(site=site.name, order=path, colors=colors))
    return FactorizationPlan(plan, terms, chains, independent,
                             max_batch_rows=max_batch_rows)


def _analyze_factorization_impl(model: Callable, plan: EnumerationPlan,
                                model_args: Tuple = (),
                                model_kwargs: Optional[Dict] = None,
                                observed: Optional[Dict[str, Any]] = None,
                                constrained: Optional[Mapping[str, Any]] = None,
                                rng_seed: int = 0,
                                max_batch_rows: Optional[int] = None
                                ) -> FactorizationPlan:
    collected = collect_term_structure(
        model, plan, model_args=model_args, model_kwargs=model_kwargs,
        observed=observed, constrained=constrained, rng_seed=rng_seed)
    return classify_factorization(collected, plan,
                                  max_batch_rows=max_batch_rows)
