"""Enumeration plans: the exact-marginalization table over discrete latents.

Stan forbids ``int`` parameters because HMC cannot move through a discrete
space; the paper's pitch is that compiling to a generative PPL lifts that
restriction.  This module is the bookkeeping half of our discrete-latent
engine: given the discrete latent sample sites of a traced model execution it
builds an :class:`EnumerationPlan` describing the *joint assignment table* —
every combination of values the discrete latents can take.

Layout conventions
------------------

Each discrete site owns one reserved broadcast axis.  A site whose value is
an array (e.g. ``int<lower=1,upper=2> z[N]``) enumerates the cartesian
product over its elements, so its axis has ``K ** N`` entries.  The plan
offers two equivalent views of the table:

* ``flat_values()`` — every site as a ``(T, *event_shape)`` array whose
  leading axis is the *flattened joint table* (``T = prod(site sizes)``,
  row-major over sites in trace order).  This is what the vectorized
  potential fast path substitutes: the table rides the existing batched
  evaluation machinery, with per-assignment log joints coming back as a
  ``(T,)`` vector to be ``logsumexp``-ed.
* ``axis_values(name)`` — the same values shaped ``(1, ..., A_i, ..., 1,
  *event_shape)`` with site ``i``'s axis at position ``i`` of the reserved
  prefix, used by the :class:`repro.enum.handler.enum_sites` effect handler
  (one traced execution evaluates all joint assignments by broadcasting).

Guard rails: a site whose distribution has no finite support (``Poisson``,
an unbounded ``int`` declaration) raises :class:`EnumerationError`; a joint
table larger than the configurable cap raises :class:`TableSizeError` — both
carry actionable messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

#: default cap on the joint assignment table (``prod_i K_i ** numel_i``).
DEFAULT_MAX_TABLE_SIZE = 100_000


class EnumerationError(RuntimeError):
    """A discrete latent site cannot be marginalized exactly."""


class TableSizeError(EnumerationError):
    """The joint enumeration table exceeds the configured size cap."""


def site_support(name: str, fn) -> np.ndarray:
    """Per-element support of a discrete site's distribution, or raise.

    Wraps ``fn.enumerate_support()`` and converts an unbounded/unknown
    support into an :class:`EnumerationError` naming the site.
    """
    try:
        support = np.asarray(fn.enumerate_support(), dtype=float)
    except NotImplementedError as exc:
        raise EnumerationError(
            f"discrete latent site {name!r} ({type(fn).__name__}) cannot be "
            f"enumerated: {exc}. Exact marginalization needs a finite support — "
            "declare the parameter with finite bounds (int<lower=..,upper=..>) "
            "or reformulate the unbounded distribution (e.g. truncate a Poisson "
            "latent to a bounded range)."
        ) from exc
    if support.ndim != 1 or support.size == 0:
        raise EnumerationError(
            f"discrete latent site {name!r}: enumerate_support() returned an "
            f"invalid support of shape {support.shape}")
    return support


@dataclass(frozen=True)
class DiscreteSiteInfo:
    """Metadata for one discrete latent sample site."""

    name: str
    support: np.ndarray          # (K,) per-element support values
    event_shape: Tuple[int, ...]

    @property
    def cardinality(self) -> int:
        """Per-element support size ``K``."""
        return int(self.support.size)

    @property
    def numel(self) -> int:
        return int(np.prod(self.event_shape)) if self.event_shape else 1

    @property
    def num_assignments(self) -> int:
        """Joint assignments of the whole site: ``K ** numel``."""
        return self.cardinality ** self.numel

    def assignments(self) -> np.ndarray:
        """``(num_assignments, *event_shape)`` joint support of the site.

        Row-major: the last element of the site varies fastest, mirroring
        ``numpy`` reshape order so axis/flat views stay consistent.
        """
        k, m = self.cardinality, self.numel
        idx = np.arange(self.num_assignments)
        strides = k ** np.arange(m - 1, -1, -1)
        digits = (idx[:, None] // strides[None, :]) % k
        values = self.support[digits]
        return values.reshape((self.num_assignments,) + self.event_shape)

    def element_digits(self, assignment_idx: np.ndarray) -> np.ndarray:
        """Per-element support indices ``(len(idx), numel)`` of assignments."""
        k, m = self.cardinality, self.numel
        strides = k ** np.arange(m - 1, -1, -1)
        return (np.asarray(assignment_idx)[:, None] // strides[None, :]) % k


class EnumerationPlan:
    """The joint assignment table over all discrete latent sites of a model."""

    def __init__(self, sites: List[DiscreteSiteInfo],
                 max_table_size: Optional[int] = None,
                 defer_size_check: bool = False):
        self.sites: List[DiscreteSiteInfo] = list(sites)
        if not self.sites:
            raise ValueError("an EnumerationPlan needs at least one discrete site")
        self.max_table_size = (DEFAULT_MAX_TABLE_SIZE if max_table_size is None
                               else int(max_table_size))
        table_size = 1
        for site in self.sites:
            table_size *= site.num_assignments
        # Python int arithmetic on purpose: a factorized plan may describe a
        # table (2^500 joint assignments) that is never materialized.
        self.table_size = int(table_size)
        if not defer_size_check:
            self.ensure_table_capacity()
        self._flat_cache: Optional[Dict[str, np.ndarray]] = None
        # draw-independent bookkeeping, built once and reused by the
        # infer_discrete post-pass (called once per retained draw)
        self._rows_cache: Dict[str, np.ndarray] = {}
        self._digits_cache: Dict[str, np.ndarray] = {}

    def ensure_table_capacity(self, factorization_note: Optional[str] = None,
                              strategy: Optional[str] = None) -> None:
        """Raise :class:`TableSizeError` if the joint table exceeds the cap.

        Called at construction for joint-table plans and *lazily* — only when
        a joint evaluation is actually needed — for factorized/contract
        plans, whose table may be astronomically large without ever being
        built.  ``factorization_note`` reports whether a structured strategy
        was attempted and why it did not apply; ``strategy`` names the
        strategy that was actually attempted (``"contract"``,
        ``"factorized"``, ...) so the fallback diagnostic does not mislead
        now that several structured strategies exist.
        """
        if self.table_size <= self.max_table_size:
            return
        detail = ", ".join(
            f"{s.name}: {s.cardinality}^{s.numel} = {s.num_assignments}"
            for s in self.sites)
        if factorization_note is None:
            attempted = (f"the {strategy} strategy was not attempted"
                         if strategy else
                         "no structured strategy (contract/factorized) was attempted")
            factorization_note = (
                f"{attempted} on this path — "
                'recompile with enum="auto" (or the legacy '
                'enumerate="factorized" spelling) so the contraction planner '
                "eliminates conditionally-independent elements in O(N*K), "
                "chains in O(T*K^2) and bounded-treewidth coupling in "
                "O(N*K^w) without a joint table")
        raise TableSizeError(
            f"joint enumeration table has {self.table_size} entries "
            f"({detail}), exceeding the cap of {self.max_table_size}. "
            f"{factorization_note}. Otherwise reduce the discrete state space "
            "(fewer elements / tighter bounds) or raise the cap "
            "(compile_model(..., enum=EnumConfig(max_table_size=...)) / "
            "Potential(enum=EnumConfig(max_table_size=...)) — the legacy "
            "max_enum_table_size= / max_table_size= spellings still work).")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace_sites(cls, trace_sites: Mapping[str, Tuple[object, Tuple[int, ...]]],
                         max_table_size: Optional[int] = None,
                         defer_size_check: bool = False) -> "EnumerationPlan":
        """Build a plan from ``{name: (distribution, event_shape)}`` entries."""
        sites = [
            DiscreteSiteInfo(name=name, support=site_support(name, fn),
                             event_shape=tuple(shape))
            for name, (fn, shape) in trace_sites.items()
        ]
        return cls(sites, max_table_size=max_table_size,
                   defer_size_check=defer_size_check)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def site_names(self) -> List[str]:
        return [site.name for site in self.sites]

    @property
    def axis_sizes(self) -> Tuple[int, ...]:
        """One reserved axis per site: ``(A_0, ..., A_{E-1})``."""
        return tuple(site.num_assignments for site in self.sites)

    def __contains__(self, name: str) -> bool:
        return any(site.name == name for site in self.sites)

    def site(self, name: str) -> DiscreteSiteInfo:
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(name)

    def site_axis(self, name: str) -> int:
        for i, site in enumerate(self.sites):
            if site.name == name:
                return i
        raise KeyError(name)

    def __repr__(self) -> str:
        detail = ", ".join(f"{s.name}({s.num_assignments})" for s in self.sites)
        return f"EnumerationPlan({detail}; table_size={self.table_size})"

    # ------------------------------------------------------------------
    # table views
    # ------------------------------------------------------------------
    def _site_strides(self) -> List[int]:
        """Row-major stride of each site's axis in the flattened table."""
        strides = []
        stride = self.table_size
        for site in self.sites:
            stride //= site.num_assignments
            strides.append(stride)
        return strides

    def site_assignment_indices(self, name: str,
                                table_idx: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-site assignment index of each (given) flat table row.

        The full-table variant (``table_idx=None``) is cached — it is pure
        plan bookkeeping and the discrete post-pass asks for it per draw.
        """
        if table_idx is None:
            if name not in self._rows_cache:
                self._rows_cache[name] = self.site_assignment_indices(
                    name, np.arange(self.table_size))
            return self._rows_cache[name]
        axis = self.site_axis(name)
        site = self.sites[axis]
        stride = self._site_strides()[axis]
        return (np.asarray(table_idx) // stride) % site.num_assignments

    @staticmethod
    def _event_pad(site: DiscreteSiteInfo) -> Tuple[int, ...]:
        """Trailing shape of a site's table values.

        Scalar sites keep a trailing singleton axis (mirroring the batched
        runtime's per-chain-scalar ``(C, 1)`` convention) so that an
        enumerated scalar broadcasts against data vectors instead of
        colliding with them; array sites use their event shape.
        """
        return site.event_shape if site.event_shape else (1,)

    def flat_values(self) -> Dict[str, np.ndarray]:
        """``{name: (table_size, *event)}`` — the flattened joint table.

        Scalar sites are shaped ``(table_size, 1)`` (see :meth:`_event_pad`).
        """
        if self._flat_cache is None:
            self.ensure_table_capacity()
            out: Dict[str, np.ndarray] = {}
            for site in self.sites:
                rows = self.site_assignment_indices(site.name)
                values = site.assignments()[rows]
                out[site.name] = values.reshape(
                    (self.table_size,) + self._event_pad(site))
            self._flat_cache = out
        return self._flat_cache

    def axis_values(self, name: str) -> np.ndarray:
        """Site values with the site's own reserved broadcast axis.

        Shape ``(1, ..., A_i, ..., 1, *event_shape)`` — axis ``i`` of the
        ``E`` reserved leading axes carries the site's joint assignments;
        every other reserved axis is a singleton, so values of different
        sites broadcast against each other into the full joint table.
        """
        axis = self.site_axis(name)
        site = self.sites[axis]
        e = len(self.sites)
        shape = (1,) * axis + (site.num_assignments,) + (1,) * (e - 1 - axis)
        return site.assignments().reshape(shape + self._event_pad(site))

    def decode(self, table_idx: int) -> Dict[str, np.ndarray]:
        """Concrete per-site values of one joint assignment (flat row)."""
        out: Dict[str, np.ndarray] = {}
        for site in self.sites:
            a = int(self.site_assignment_indices(site.name, np.array([table_idx]))[0])
            out[site.name] = site.assignments()[a]
        return out

    # ------------------------------------------------------------------
    # posteriors over assignments (the infer_discrete post-pass)
    # ------------------------------------------------------------------
    def element_marginals(self, name: str, weights: np.ndarray) -> np.ndarray:
        """Per-element marginal probabilities of a site.

        ``weights`` is a normalized ``(table_size,)`` distribution over joint
        assignments; returns ``(*event_shape, K)`` with ``out[..., k]`` the
        marginal probability that the element takes ``support[k]``.
        """
        site = self.site(name)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.table_size,):
            raise ValueError(
                f"weights must have shape ({self.table_size},), got {weights.shape}")
        if name not in self._digits_cache:
            rows = self.site_assignment_indices(name)
            self._digits_cache[name] = site.element_digits(rows)   # (T, numel)
        digits = self._digits_cache[name]
        out = np.empty((site.numel, site.cardinality))
        for m in range(site.numel):
            out[m] = np.bincount(digits[:, m], weights=weights,
                                 minlength=site.cardinality)
        return out.reshape(site.event_shape + (site.cardinality,))
