"""The parallel-enumeration effect handler.

:class:`enum_sites` is an ordinary effect handler (a
:class:`repro.ppl.handlers.Messenger`): at every discrete latent sample site
named in its :class:`~repro.enum.plan.EnumerationPlan` it supplies the site's
*entire* enumerated support instead of a single draw, lifted onto the site's
reserved broadcast axis.  One traced execution of the model therefore
evaluates every joint assignment of the discrete latents at once; the
per-site log-probability terms broadcast into the joint table, and
:func:`enum_trace_log_density` reduces them to a per-assignment log-joint
vector that the potential ``logsumexp``-es into the exact marginal density.

Two layouts are supported (see :mod:`repro.enum.plan`):

* ``"axes"`` — each site on its own leading axis (the handler default; what
  the trace-based pyro runtime uses);
* ``"flat"`` — the flattened joint table as one leading axis, marked
  ``is_batched`` so the vectorized runtime helpers (``_index``, ``_mul``,
  the fast log-density context) treat it exactly like a chain batch.

Both layouts materialize the **joint** table (``prod_i K_i^numel_i`` rows)
and therefore serve the ``"parallel"``/``"rows"`` strategies only; the
``"factorized"`` strategy (:mod:`repro.enum.factorize`) substitutes periodic
per-element grids through the fast log-density context instead and never
builds the table.  The graph-walk term classification below
(:func:`_depends_on`) is the site-granular ancestor of the factorized
engine's element-granular analysis.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor, is_grad_enabled
from repro.enum.plan import EnumerationPlan
from repro.ppl import handlers


class enum_sites(handlers.Messenger):
    """Substitute every planned discrete latent site with its support table."""

    def __init__(self, fn: Optional[Callable] = None,
                 plan: Optional[EnumerationPlan] = None, layout: str = "axes"):
        super().__init__(fn)
        if plan is None:
            raise ValueError("enum_sites requires an EnumerationPlan")
        if layout not in ("axes", "flat"):
            raise ValueError(f"unknown enumeration layout {layout!r}")
        self.plan = plan
        self.layout = layout

    def process_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] != "sample" or msg["is_observed"] or msg["value"] is not None:
            return
        name = msg["name"]
        if name not in self.plan:
            return
        if self.layout == "axes":
            value = as_tensor(self.plan.axis_values(name))
        else:
            value = as_tensor(self.plan.flat_values()[name])
            value.is_batched = True
        msg["value"] = value
        msg["enumerated"] = True


def _depends_on(tensor: Tensor, target_ids) -> bool:
    """Whether ``tensor`` was computed from any tensor in ``target_ids``.

    Walks the recorded autodiff graph (iterative, memo-free DFS with a
    visited set) — the exact way to know if a log-prob term is
    assignment-dependent, with no shape coincidences.
    """
    stack = [tensor]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in target_ids:
            return True
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.parents)
    return False


def _enum_term_ids(model_trace: Dict[str, Dict[str, Any]]) -> set:
    """ids of the enumerated value tensors substituted into a trace."""
    return {
        id(site["value"]) for site in model_trace.values()
        if site.get("enumerated") and isinstance(site["value"], Tensor)
    }


def _looks_enum_shaped(lp: Tensor, num_axes: int, axis_sizes) -> bool:
    """Shape-based fallback when no autodiff graph was recorded (no_grad).

    Can misread a data term whose leading length coincides with an axis
    size; the graph walk above is authoritative whenever grads are on.
    """
    shape = lp.data.shape
    return (
        lp.data.ndim >= num_axes
        and all(shape[j] in (1, axis_sizes[j]) for j in range(num_axes))
        and any(shape[j] == axis_sizes[j] != 1 for j in range(num_axes))
    )


def _reduce_enum_term(lp: Tensor, num_axes: int, axis_sizes, enum_indexed: bool) -> Tensor:
    """Sum a log-prob term over its trailing (event/data) axes.

    A term that carries the reserved enumeration prefix keeps those axes; a
    term that never touched an enumerated value is summed to a scalar (it is
    constant across assignments and broadcasts into the joint table).
    """
    if not enum_indexed:
        return lp.sum() if lp.data.ndim > 0 else lp
    if lp.data.ndim > num_axes:
        return ops.sum_(lp, axis=tuple(range(num_axes, lp.data.ndim)))
    return lp


def enum_trace_log_density(model_trace: Dict[str, Dict[str, Any]],
                           plan: EnumerationPlan, layout: str = "axes") -> Tensor:
    """Per-assignment log joint of an enumerated trace.

    Returns a ``(table_size,)`` tensor: entry ``t`` is the log joint density
    of the trace with the discrete latents fixed to joint assignment ``t``
    (flattened row-major over the reserved axes).  ``layout`` must match the
    layout the values were substituted with: ``"axes"`` reduces into the
    per-site axis prefix, ``"flat"`` keeps the flattened table axis.

    Assignment-dependence of each term is decided by walking the recorded
    autodiff graph back to the enumerated value tensors — exact, no shape
    coincidences (a data vector whose length happens to equal the table
    size is still summed to a scalar).  Under ``no_grad`` no graph is
    recorded and a shape heuristic takes over; inside
    :class:`repro.infer.Potential` evaluations additionally sit behind the
    bitwise rows-oracle validation.
    """
    enum_ids = _enum_term_ids(model_trace)
    use_graph = is_grad_enabled()
    if layout == "flat":
        t_size = plan.table_size
        total = as_tensor(np.zeros(t_size))
        for site in model_trace.values():
            if site["type"] == "sample":
                lp = as_tensor(site["fn"].log_prob(site["value"]))
            elif site["type"] == "factor":
                lp = as_tensor(site["value"])
            else:
                continue
            enum_indexed = _depends_on(lp, enum_ids) if use_graph else (
                lp.data.ndim >= 1 and lp.data.shape[0] == t_size)
            total = ops.add(total, _reduce_enum_term(lp, 1, (t_size,), enum_indexed))
        return total
    axis_sizes = plan.axis_sizes
    e = len(axis_sizes)
    total = as_tensor(np.zeros(axis_sizes))
    for site in model_trace.values():
        if site["type"] == "sample":
            lp = as_tensor(site["fn"].log_prob(site["value"]))
        elif site["type"] == "factor":
            lp = as_tensor(site["value"])
        else:
            continue
        enum_indexed = _depends_on(lp, enum_ids) if use_graph else \
            _looks_enum_shaped(lp, e, axis_sizes)
        total = ops.add(total, _reduce_enum_term(lp, e, axis_sizes, enum_indexed))
    return ops.reshape(total, (plan.table_size,))


def enum_log_density(model: Callable, plan: EnumerationPlan, model_args=(),
                     model_kwargs=None, substituted: Optional[Dict[str, Any]] = None,
                     observed: Optional[Dict[str, Any]] = None, rng_seed: int = 0,
                     layout: str = "axes"):
    """Run ``model`` once with parallel enumeration; return per-assignment log joints.

    ``substituted`` fixes the continuous latent sites; ``observed`` conditions
    data sites.  Returns ``(per_assignment, trace)`` where ``per_assignment``
    is a differentiable ``(table_size,)`` tensor.  The ``"axes"`` layout is
    the natural one for hand-written models; compiled Stan models (whose
    generated code indexes sites elementwise, ``z[n]``) need ``"flat"`` —
    its ``is_batched`` marking routes the runtime's indexing helpers around
    the table axis.
    """
    model_kwargs = model_kwargs or {}
    tracer = handlers.trace()
    with handlers.seed(rng_seed=rng_seed), \
         handlers.condition(data=observed or {}), \
         handlers.substitute(data=substituted or {}), \
         enum_sites(plan=plan, layout=layout), tracer:
        model(*model_args, **model_kwargs)
    return enum_trace_log_density(tracer.trace, plan, layout=layout), tracer.trace
