"""General tensor variable elimination with a greedy contraction order.

:mod:`repro.enum.factorize` proves two shapes — independent elements and
2-colored path chains — and falls back to the exponential joint table for
everything else.  This module removes the shape zoo: the per-element
log-factors collected by :func:`repro.enum.factorize.collect_term_structure`
are treated as a *general factor graph* (unary plus n-ary factors over
enumerated elements, ``n >= 2`` and cross-site allowed), an elimination
order is chosen with an opt_einsum-style greedy heuristic (score = size of
the intermediate produced by eliminating a variable, deterministic
tie-break by site/element order), and the order executes as a sequence of
broadcast-``add`` / ``logsumexp`` contractions on the autodiff tape, so
NUTS/VI gradients flow through unchanged.  Trees eliminate leaf-first in
``O(N * K^2)``, factorial HMMs (two coupled chains) in ``O(T * K^3)``
cliques, bounded-treewidth grids in ``O(N * K^(w+1))`` — sizes whose joint
table is astronomically unrepresentable.

Layout: every enumerated element is a *variable* ``(site, elem)``.  A
greedy proper coloring of the co-occurrence graph assigns each variable a
mixed-radix *digit* of the batch row index (co-occurring variables always
get distinct digits), so one gridded model execution with
``batch_rows = prod(radix)`` rows enumerates every joint assignment any
single factor needs; factor tables are then gathered straight out of the
collected row vectors with stride arithmetic (``ops.getitem`` keeps the
gather differentiable).

The strict engine's shapes are *degenerate orders* of this one:
:func:`analyze_contraction` first offers the collected terms to the strict
classifier and only plans a general contraction when that refuses — so
chain/independent models keep executing the proven code path bitwise while
everything else graduates from the joint table to the planner.

:class:`ContractFactors` re-exposes the same factor tables as NumPy arrays
with the elimination order attached; :func:`repro.enum.discrete.infer_discrete`
runs calibration over the elimination tree (a backward pass) for exact
marginals, max-product MAP, and joint posterior sampling — the
forward-backward/Viterbi/FFBS of the chain engine, generalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp as _np_logsumexp

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.enum.factorize import (
    DEFAULT_MAX_BATCH_ROWS,
    CollectedTerm,
    FactorizationError,
    FactorizationPlan,
    classify_factorization,
    collect_term_structure,
)
from repro.enum.plan import DEFAULT_MAX_TABLE_SIZE, EnumerationPlan

#: a variable of the factor graph: ``(site_name, element_index)``.
Var = Tuple[str, int]


class ContractionError(FactorizationError):
    """The factor graph cannot be contracted within the configured caps."""


@dataclass(frozen=True)
class EliminationStep:
    """One greedy elimination: combine every live factor touching ``var``.

    ``clique`` is the sorted scope of the combined table ``Phi_var``
    (``var`` plus its live neighbours at elimination time, fill-in edges
    included); ``message`` is ``clique`` minus ``var`` — the scope of the
    ``logsumexp`` result handed back to the factor pool (empty for the last
    variable of a connected component, whose message is a scalar added to
    the marginal total).
    """

    var: Var
    clique: Tuple[Var, ...]
    message: Tuple[Var, ...]
    table_size: int

    def axis(self) -> int:
        return self.clique.index(self.var)


@dataclass(frozen=True)
class EliminationOrder:
    """A complete greedy elimination order with its cost accounting."""

    steps: Tuple[EliminationStep, ...]
    #: total entries across all materialized cliques (the planner cost
    #: estimate stamped into fit metadata and ``BENCH_*.json``).
    cost: int
    #: largest single clique table (the treewidth-governed bottleneck).
    max_intermediate: int


def plan_elimination(variables: Sequence[Var], cards: Mapping[Var, int],
                     scopes: Sequence[Tuple[Var, ...]],
                     max_table_size: Optional[int] = None) -> EliminationOrder:
    """Greedy elimination order over the co-occurrence graph.

    opt_einsum-style greedy path: at each step eliminate the variable whose
    combined clique's *message* (the produced intermediate, size = product
    of the live neighbours' cardinalities) is smallest, breaking ties by the
    deterministic ``variables`` order — on a path this reproduces the
    endpoint-first left-to-right order of the chain engine.  Fill-in edges
    are tracked so later scores see earlier messages.  Raises
    :class:`ContractionError` as soon as any clique table would exceed
    ``max_table_size``, reporting the greedy path cost accumulated so far.
    """
    cap = DEFAULT_MAX_TABLE_SIZE if max_table_size is None else int(max_table_size)
    order_index = {v: i for i, v in enumerate(variables)}
    adj: Dict[Var, set] = {v: set() for v in variables}
    for scope in scopes:
        for u in scope:
            for w in scope:
                if u != w:
                    adj[u].add(w)

    remaining = set(variables)
    steps: List[EliminationStep] = []
    cost = 0
    max_intermediate = 0
    while remaining:
        best_key = None
        best_var = None
        for v in variables:
            if v not in remaining:
                continue
            size = 1
            for u in adj[v]:
                size *= cards[u]
            key = (size, order_index[v])
            if best_key is None or key < best_key:
                best_key, best_var = key, v
        v = best_var
        nbrs = set(adj[v])
        clique = tuple(sorted([v, *nbrs], key=order_index.__getitem__))
        table = 1
        for u in clique:
            table *= cards[u]
        if table > cap:
            raise ContractionError(
                f"greedy elimination of variable {v} materializes a "
                f"{table}-entry clique over {len(clique)} variables, "
                f"exceeding the table cap of {cap} (greedy path cost before "
                f"this step: {cost} entries); the coupling treewidth is too "
                "high — reduce the discrete state space or raise the cap "
                "via EnumConfig(max_table_size=...)")
        message = tuple(u for u in clique if u != v)
        steps.append(EliminationStep(v, clique, message, int(table)))
        cost += table
        max_intermediate = max(max_intermediate, table)
        for u in nbrs:
            adj[u].discard(v)
            adj[u].update(nbrs - {u})
        del adj[v]
        remaining.discard(v)
    return EliminationOrder(tuple(steps), int(cost), int(max_intermediate))


class ContractionPlan:
    """The general tensor-variable-elimination layout for one model.

    Built by :func:`analyze_contraction` when the strict classifier refuses
    the structure.  Mirrors :class:`~repro.enum.factorize.FactorizationPlan`'s
    execution interface — ``batch_rows`` / :meth:`grids` /
    :meth:`check_terms` / :meth:`contract` / :meth:`posterior_factors` — so
    :class:`repro.infer.Potential` drives both through the same code path.
    """

    #: resolved-strategy tag read by the potential / metadata stamping.
    strategy = "contract"

    def __init__(self, plan: EnumerationPlan, terms: Sequence[CollectedTerm],
                 max_batch_rows: Optional[int] = None,
                 max_table_size: Optional[int] = None):
        self.plan = plan
        self.terms = list(terms)
        order_index: Dict[Var, int] = {}
        variables: List[Var] = []
        cards: Dict[Var, int] = {}
        for site in plan.sites:
            for n in range(max(site.numel, 1)):
                v = (site.name, n)
                order_index[v] = len(variables)
                variables.append(v)
                cards[v] = site.cardinality
        self.variables: Tuple[Var, ...] = tuple(variables)
        self.cards = cards

        scopes = [ct.scope for ct in self.terms
                  if ct.kind == "factor" and len(ct.scope) >= 2]
        self.order = plan_elimination(self.variables, cards, scopes,
                                      max_table_size=max_table_size)

        # Mixed-radix digit assignment: greedy proper coloring of the
        # co-occurrence graph in deterministic variable order, so every
        # factor's scope variables ride distinct digits of the batch row.
        cooc: Dict[Var, set] = {v: set() for v in variables}
        for scope in scopes:
            for u in scope:
                for w in scope:
                    if u != w:
                        cooc[u].add(w)
        colors: Dict[Var, int] = {}
        for v in self.variables:
            used = {colors[u] for u in cooc[v] if u in colors}
            c = 0
            while c in used:
                c += 1
            colors[v] = c
        ndigits = (max(colors.values()) + 1) if colors else 1
        radix = [1] * ndigits
        for v, c in colors.items():
            radix[c] = max(radix[c], cards[v])
        strides = [1] * ndigits
        for d in range(1, ndigits):
            strides[d] = strides[d - 1] * radix[d - 1]
        rows = strides[-1] * radix[-1]
        cap = DEFAULT_MAX_BATCH_ROWS if max_batch_rows is None else int(max_batch_rows)
        if rows > cap:
            raise ContractionError(
                f"contraction batch needs {rows} rows ({ndigits} digits of "
                f"radix {tuple(radix)}), exceeding the cap of {cap}")
        self._colors = colors
        self._radix = tuple(radix)
        self._strides = tuple(strides)
        self.batch_rows = int(rows)
        self._grid_cache: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # description / bookkeeping
    # ------------------------------------------------------------------
    def describe(self) -> str:
        n_nary = sum(1 for ct in self.terms
                     if ct.kind == "factor" and len(ct.scope) >= 2)
        return (f"general contraction: {len(self.variables)} variables over "
                f"{len(self.plan.sites)} site(s), {n_nary} coupling "
                f"factor(s); greedy elimination cost {self.order.cost} "
                f"entries, max intermediate {self.order.max_intermediate}")

    def __repr__(self) -> str:
        return f"ContractionPlan({self.describe()}; batch_rows={self.batch_rows})"

    def cost_estimate(self) -> int:
        """Total contraction table cost (entries summed over eliminations)."""
        return int(self.order.cost)

    # ------------------------------------------------------------------
    # the substitution grids
    # ------------------------------------------------------------------
    def grids(self) -> Dict[str, np.ndarray]:
        """``{site: (batch_rows, numel)}`` mixed-radix substitution values.

        Element ``n`` of a site rides digit ``d = color(site, n)``:
        its column is ``support[((r // stride_d) % radix_d) % K]``, so the
        rows whose *other* digits are zero enumerate exactly the joint
        assignments each factor's scope needs.
        """
        if self._grid_cache is None:
            out: Dict[str, np.ndarray] = {}
            r = np.arange(self.batch_rows)
            for site in self.plan.sites:
                k = site.cardinality
                cols = np.empty((self.batch_rows, max(site.numel, 1)))
                for n in range(max(site.numel, 1)):
                    d = self._colors[(site.name, n)]
                    digit = (r // self._strides[d]) % self._radix[d]
                    cols[:, n] = site.support[digit % k]
                out[site.name] = cols
            self._grid_cache = out
        return self._grid_cache

    # ------------------------------------------------------------------
    # term extraction
    # ------------------------------------------------------------------
    def check_terms(self, names: Sequence[Optional[str]]) -> None:
        """Verify a collected-term sequence matches the analysed structure."""
        if len(names) != len(self.terms):
            raise FactorizationError(
                f"model produced {len(names)} log-prob terms, the contraction "
                f"analysis saw {len(self.terms)} — assignment-dependent "
                "control flow cannot be contracted")
        for role, name in zip(self.terms, names):
            if role.name != name:
                raise FactorizationError(
                    f"term {role.position} is {name!r}, analysis saw {role.name!r}")

    def _extract(self, terms: Sequence[Tensor], total_rows: int,
                 offset: int) -> Tuple[Optional[Tensor], Dict[Var, Tensor],
                                       List[Tuple[Tuple[Var, ...], Tensor]]]:
        """Constant total, per-variable unary factors, and n-ary factor tables.

        ``offset = c * batch_rows`` addresses one chain's rows inside a
        multi-chain ``C * batch_rows`` tape, exactly like the factorized
        engine's extraction.  A factor over scope ``(v_1, ..., v_m)`` is
        gathered at rows ``offset + sum_i a_i * stride(digit(v_i))`` — the
        proper coloring guarantees the scope's digits are distinct, so the
        gather enumerates the full ``(K_1, ..., K_m)`` table.
        """
        const_total: Optional[Tensor] = None
        prior_blocks: Dict[str, Tensor] = {}
        unary_vecs: Dict[Var, List[Tensor]] = {}
        nary_groups: Dict[Tuple[Var, ...], List[Tensor]] = {}
        for ct, raw in zip(self.terms, terms):
            term = as_tensor(raw)
            if ct.kind == "const":
                if term.data.ndim >= 1 and term.data.shape[0] == total_rows \
                        and total_rows > self.batch_rows:
                    reduced = FactorizationPlan._reduce_rows(term, total_rows)
                    reduced = ops.getitem(reduced, offset)
                else:
                    reduced = term.sum() if term.data.ndim > 0 else term
                const_total = reduced if const_total is None \
                    else ops.add(const_total, reduced)
            elif ct.kind == "site_prior":
                site = self.plan.site(ct.site)
                numel = max(site.numel, 1)
                if term.data.ndim == 1:
                    term = ops.reshape(term, (term.data.shape[0], 1))
                elif term.data.ndim > 2:
                    term = ops.sum_(term, axis=tuple(range(2, term.data.ndim)))
                if term.data.shape != (total_rows, numel):
                    raise FactorizationError(
                        f"site prior {ct.site!r} has shape {term.data.shape}, "
                        f"expected ({total_rows}, {numel})")
                prior_blocks[ct.site] = term
            else:
                reduced = FactorizationPlan._reduce_rows(term, total_rows)
                if len(ct.scope) == 1:
                    unary_vecs.setdefault(ct.scope[0], []).append(reduced)
                else:
                    nary_groups.setdefault(ct.scope, []).append(reduced)

        unary: Dict[Var, Tensor] = {}
        for site in self.plan.sites:
            prior = prior_blocks.get(site.name)
            if prior is None:
                raise FactorizationError(
                    f"site {site.name!r} produced no declaration-prior term")
            k = site.cardinality
            for n in range(max(site.numel, 1)):
                v = (site.name, n)
                stride = self._strides[self._colors[v]]
                row_idx = offset + np.arange(k) * stride
                col = ops.getitem(prior, (row_idx, np.full(k, n, dtype=int)))
                for extra in unary_vecs.get(v, ()):
                    col = ops.add(col, ops.getitem(extra, row_idx))
                unary[v] = col

        nary: List[Tuple[Tuple[Var, ...], Tensor]] = []
        for scope, parts in nary_groups.items():
            total = parts[0]
            for extra in parts[1:]:
                total = ops.add(total, extra)
            m = len(scope)
            idx: Any = offset
            for i, v in enumerate(scope):
                axes = (1,) * i + (-1,) + (1,) * (m - 1 - i)
                a = np.arange(self.cards[v]).reshape(axes)
                idx = idx + a * self._strides[self._colors[v]]
            nary.append((scope, ops.getitem(total, idx)))
        return const_total, unary, nary

    # ------------------------------------------------------------------
    # the contraction (exact marginal log joint)
    # ------------------------------------------------------------------
    def contract(self, terms: Sequence[Tensor], offset: int = 0,
                 total_rows: Optional[int] = None) -> Tensor:
        """Exact marginal log joint (a scalar tensor) from collected terms.

        Executes the planned elimination order: each step pulls every live
        factor touching the step variable, aligns them onto the clique scope
        (sorted scopes make alignment a pure reshape-with-singleton-axes —
        no transposes), sums by broadcast, and ``logsumexp``-reduces the
        variable's axis.  The resulting message re-enters the factor pool;
        an empty-scope message closes a connected component and adds to the
        running total.  Every op is differentiable, so the tape carries
        exact gradients of the marginal.
        """
        const_total, unary, nary = self._extract(
            terms, total_rows or self.batch_rows, offset)
        total = const_total if const_total is not None else as_tensor(0.0)
        pool: List[Tuple[Tuple[Var, ...], Tensor]] = \
            [((v,), unary[v]) for v in self.variables]
        pool.extend(nary)
        for step in self.order.steps:
            group = [f for f in pool if step.var in f[0]]
            pool = [f for f in pool if step.var not in f[0]]
            shape_full = tuple(self.cards[u] for u in step.clique)
            phi: Optional[Tensor] = None
            for scope, t in group:
                scope_set = set(scope)
                shape = tuple(self.cards[u] if u in scope_set else 1
                              for u in step.clique)
                aligned = t if t.data.shape == shape else ops.reshape(t, shape)
                phi = aligned if phi is None else ops.add(phi, aligned)
            if phi.data.shape != shape_full:
                phi = ops.add(phi, as_tensor(np.zeros(shape_full)))
            msg = ops.logsumexp(phi, axis=step.axis())
            if step.message:
                pool.append((step.message, msg))
            else:
                total = ops.add(total, msg)
        return total

    # ------------------------------------------------------------------
    # posterior factors (the infer_discrete backward pass)
    # ------------------------------------------------------------------
    def posterior_factors(self, terms: Sequence[Tensor],
                          offset: int = 0) -> "ContractFactors":
        """NumPy factor tables of one gridded execution, order attached.

        The discrete posterior conditional on the continuous draw is the
        normalized factor graph itself; :class:`ContractFactors` runs
        calibration over the elimination tree for exact marginals, MAP, and
        joint sampling.
        """
        _, unary, nary = self._extract(terms, self.batch_rows, offset)
        factors: List[Tuple[Tuple[Var, ...], np.ndarray]] = []
        for v in self.variables:
            factors.append(((v,), np.array(unary[v].data, dtype=float)))
        for scope, t in nary:
            factors.append((scope, np.array(t.data, dtype=float)))
        return ContractFactors(steps=self.order.steps, cards=dict(self.cards),
                               factors=factors)


@dataclass
class ContractFactors:
    """One draw's discrete-posterior factor graph plus its elimination order.

    The generalization of the chain engine's
    :class:`~repro.enum.factorize.FactorBundle`: calibration over the
    elimination tree (one forward sweep in step order, one backward sweep in
    reverse) yields exact per-variable marginals; a max-product forward
    sweep with reverse-order backtracking yields the joint MAP; reverse-order
    conditional sampling from the sum-product cliques yields exact joint
    posterior draws (FFBS on a chain is the special case).
    """

    steps: Tuple[EliminationStep, ...]
    cards: Dict[Var, int]
    factors: List[Tuple[Tuple[Var, ...], np.ndarray]]

    def _forward(self, use_max: bool = False
                 ) -> Tuple[List[np.ndarray], List[np.ndarray], List[Optional[int]]]:
        """Replay the elimination, keeping every clique table.

        Returns per-step clique tables ``Phi``, messages, and each step's
        *parent* — the later step that consumed its message (``None`` for
        component roots).  The parent pointers are the elimination tree the
        backward pass walks.
        """
        pool: List[Tuple[Tuple[Var, ...], np.ndarray, Optional[int]]] = \
            [(scope, arr, None) for scope, arr in self.factors]
        cliques: List[np.ndarray] = []
        messages: List[np.ndarray] = []
        parents: List[Optional[int]] = []
        with np.errstate(all="ignore"):
            for si, step in enumerate(self.steps):
                group = [f for f in pool if step.var in f[0]]
                pool = [f for f in pool if step.var not in f[0]]
                shape_full = tuple(self.cards[u] for u in step.clique)
                phi = np.zeros(shape_full)
                for scope, arr, origin in group:
                    scope_set = set(scope)
                    shape = tuple(self.cards[u] if u in scope_set else 1
                                  for u in step.clique)
                    phi = phi + np.asarray(arr, dtype=float).reshape(shape)
                    if origin is not None:
                        parents[origin] = si
                axis = step.axis()
                if use_max:
                    msg = phi.max(axis=axis)
                else:
                    msg = _np_logsumexp(phi, axis=axis)
                cliques.append(phi)
                messages.append(msg)
                parents.append(None)
                if step.message:
                    pool.append((step.message, msg, si))
        return cliques, messages, parents

    def _beliefs(self) -> List[np.ndarray]:
        """Calibrated clique beliefs: ``Phi_v`` plus the backward message.

        ``beta_v = Phi_v + extend(reduce(beta_parent) - m_v)``: the parent's
        belief marginalized down to the message scope, with the forward
        message divided back out so no evidence is double-counted.
        """
        cliques, messages, parents = self._forward()
        n = len(self.steps)
        beliefs: List[Optional[np.ndarray]] = [None] * n
        with np.errstate(all="ignore"):
            for si in range(n - 1, -1, -1):
                step = self.steps[si]
                phi = cliques[si]
                p = parents[si]
                if p is None:
                    beliefs[si] = phi
                    continue
                pstep = self.steps[p]
                keep = {pstep.clique.index(u) for u in step.message}
                drop = tuple(ax for ax in range(len(pstep.clique))
                             if ax not in keep)
                back = _np_logsumexp(beliefs[p], axis=drop) if drop else beliefs[p]
                msg = messages[si]
                dead = np.isneginf(msg)
                back = np.where(dead, -np.inf,
                                back - np.where(dead, 0.0, msg))
                beliefs[si] = phi + np.expand_dims(back, step.axis())
        return beliefs

    def marginals(self) -> Dict[Var, np.ndarray]:
        """Exact ``{variable: (K,) posterior probabilities}``."""
        beliefs = self._beliefs()
        out: Dict[Var, np.ndarray] = {}
        with np.errstate(all="ignore"):
            for si, step in enumerate(self.steps):
                b = beliefs[si]
                axis = step.axis()
                drop = tuple(ax for ax in range(b.ndim) if ax != axis)
                lm = _np_logsumexp(b, axis=drop) if drop else b
                lm = lm - _np_logsumexp(lm)
                out[step.var] = np.exp(lm)
        return out

    def _backtrack(self, cliques: List[np.ndarray],
                   pick: Callable[[np.ndarray], int]) -> Dict[Var, int]:
        """Reverse-elimination-order assignment: every non-step variable of a
        clique lives in the message scope, hence was eliminated later and is
        already assigned when the sweep reaches the clique."""
        assign: Dict[Var, int] = {}
        for si in range(len(self.steps) - 1, -1, -1):
            step = self.steps[si]
            idx = tuple(slice(None) if u == step.var else assign[u]
                        for u in step.clique)
            vec = np.asarray(cliques[si][idx], dtype=float).reshape(-1)
            assign[step.var] = pick(vec)
        return assign

    def map_assignment(self) -> Dict[Var, int]:
        """The joint posterior mode via max-product + backtracking."""
        cliques, _, _ = self._forward(use_max=True)
        return self._backtrack(cliques, lambda vec: int(np.argmax(vec)))

    def sample(self, rng: np.random.Generator) -> Dict[Var, int]:
        """One exact joint posterior draw via conditional sampling."""
        cliques, _, _ = self._forward()

        def pick(vec: np.ndarray) -> int:
            with np.errstate(all="ignore"):
                probs = np.exp(vec - _np_logsumexp(vec))
            probs = probs / probs.sum()
            return int(rng.choice(probs.size, p=probs))

        return self._backtrack(cliques, pick)


def analyze_contraction(model: Callable, plan: EnumerationPlan,
                        model_args: Tuple = (),
                        model_kwargs: Optional[Dict] = None,
                        observed: Optional[Dict[str, Any]] = None,
                        constrained: Optional[Mapping[str, Any]] = None,
                        rng_seed: int = 0,
                        max_batch_rows: Optional[int] = None,
                        max_table_size: Optional[int] = None,
                        telemetry=None):
    """Plan elimination for a model's discrete factor graph.

    Collects the per-element log-factor structure once
    (:func:`~repro.enum.factorize.collect_term_structure`) and first offers
    it to the strict chain/independent classifier: shapes the proven
    factorized engine handles come back as a
    :class:`~repro.enum.factorize.FactorizationPlan` and execute bitwise
    identically to ``enumerate="factorized"`` — the special cases are
    degenerate elimination orders, so there is nothing to re-derive.  Only
    structure the strict classifier refuses (trees, 3-way terms, cross-site
    coupling, factorial HMMs) is planned as a general
    :class:`ContractionPlan`.  Raises :class:`FactorizationError` (or its
    subclass :class:`ContractionError` with the greedy cost report) when no
    elimination strategy fits; callers fall back to the joint table.

    ``telemetry`` receives the same ``enum.analyze`` span as
    :func:`~repro.enum.factorize.analyze_factorization`, with the resolved
    strategy and — for general contractions — the planner cost estimate.
    """
    from repro.obs import as_telemetry

    with as_telemetry(telemetry).span(
            "enum.analyze", sites=len(plan.sites),
            table_size=plan.table_size) as span:
        collected = collect_term_structure(
            model, plan, model_args=model_args, model_kwargs=model_kwargs,
            observed=observed, constrained=constrained, rng_seed=rng_seed)
        try:
            result = classify_factorization(collected, plan,
                                            max_batch_rows=max_batch_rows)
            span.set(strategy="factorized",
                     chain_blocks=len(result.chains),
                     independent_sites=sum(
                         1 for elems in result.independent.values() if elems))
            return result
        except FactorizationError:
            pass
        result = ContractionPlan(plan, collected,
                                 max_batch_rows=max_batch_rows,
                                 max_table_size=max_table_size)
        span.set(strategy="contract",
                 elimination_cost=result.order.cost,
                 max_intermediate=result.order.max_intermediate)
        return result
