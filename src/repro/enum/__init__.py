"""Discrete-latent enumeration engine: exact marginalization of ``int`` parameters.

Stan rejects ``int`` parameters outright — mixture assignments, occupancy
states and HMM paths must be marginalized by hand (``log_sum_exp`` algebra in
the model block).  Compiling to a generative PPL removes that restriction:
this package makes bounded discrete latents first-class by enumerating their
joint support and summing them out of the density *exactly*.

Pieces
------

* :class:`~repro.enum.plan.EnumerationPlan` / :class:`DiscreteSiteInfo` —
  the joint assignment table over the discrete latent sites, with the
  unbounded-support and table-size guard rails
  (:class:`EnumerationError` / :class:`TableSizeError`).
* :class:`~repro.enum.handler.enum_sites` — the effect handler lifting each
  discrete site onto its own reserved broadcast axis so one traced execution
  evaluates all joint assignments (plus the trace reduction
  :func:`enum_trace_log_density` and the convenience
  :func:`enum_log_density`).
* :func:`~repro.enum.factorize.analyze_factorization` /
  :class:`~repro.enum.factorize.FactorizationPlan` — the factorized engine:
  element-level dependency analysis over the autodiff graph partitions
  discrete sites into conditionally-independent blocks (per-element
  enumeration, O(N*K)) and chain-structured blocks eliminated by a
  logsumexp-matmul recursion (the forward algorithm, O(T*K^2)), replacing
  the exponential joint table wherever the structure allows.
* :func:`~repro.enum.contract.analyze_contraction` /
  :class:`~repro.enum.contract.ContractionPlan` — general tensor variable
  elimination: the per-element log factors form a factor graph (unary +
  n-ary, cross-site allowed); a greedy min-fill elimination order executes
  as batched logsumexp contractions on the autodiff tape, handling trees,
  bounded-treewidth grids and factorial-HMM multi-site coupling, and
  delegating to :class:`FactorizationPlan` (bitwise-identical) when the
  structure is an independent block or a chain.
* :func:`~repro.enum.discrete.infer_discrete` — the post-pass recovering
  per-draw discrete posteriors (marginal responsibilities / joint MAP /
  exact samples) from the continuous draws of a marginalized fit; on
  structured potentials it runs forward-backward / Viterbi / backward
  sampling on the per-component factors — generalized to a calibrated
  elimination tree under the contract strategy — instead of materializing
  the table.

The compile-side entry point is ``compile_model(source, enum="auto")`` (an
:class:`repro.engine.EnumConfig` strategy; the legacy ``enumerate=`` kwarg
keeps working as a deprecated shim); the density-side integration lives in
:class:`repro.infer.Potential`, whose marginalized evaluation contracts (or
``logsumexp``-es) the enumeration structure so NUTS/HMC/VI run unchanged.
"""

from repro.enum.plan import (
    DEFAULT_MAX_TABLE_SIZE,
    DiscreteSiteInfo,
    EnumerationError,
    EnumerationPlan,
    TableSizeError,
    site_support,
)
from repro.enum.factorize import (
    DEFAULT_MAX_BATCH_ROWS,
    FactorBundle,
    FactorizationError,
    FactorizationPlan,
    analyze_factorization,
)
from repro.enum.contract import (
    ContractFactors,
    ContractionError,
    ContractionPlan,
    analyze_contraction,
    plan_elimination,
)
from repro.enum.handler import enum_log_density, enum_sites, enum_trace_log_density
from repro.enum.discrete import DiscretePosterior, discrete_rng, infer_discrete

__all__ = [
    "DEFAULT_MAX_TABLE_SIZE",
    "DEFAULT_MAX_BATCH_ROWS",
    "ContractFactors",
    "ContractionError",
    "ContractionPlan",
    "DiscreteSiteInfo",
    "EnumerationError",
    "EnumerationPlan",
    "FactorBundle",
    "FactorizationError",
    "FactorizationPlan",
    "TableSizeError",
    "analyze_contraction",
    "analyze_factorization",
    "plan_elimination",
    "site_support",
    "enum_sites",
    "enum_log_density",
    "enum_trace_log_density",
    "DiscretePosterior",
    "discrete_rng",
    "infer_discrete",
]
