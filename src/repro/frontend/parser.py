"""Recursive-descent parser for the Stan language and the DeepStan extensions.

Produces the :mod:`repro.frontend.ast` representation.  The grammar follows
§3.1 of the paper (and the Stan reference manual for the concrete syntax),
including:

* the seven standard blocks plus ``networks``, ``guide parameters`` and
  ``guide`` (§5),
* constrained types (``<lower=..., upper=...>``), sized containers
  (``vector[N]``, ``matrix[N, M]``), constrained containers (``simplex[K]``,
  ``ordered[K]``, ...), old- and new-style array declarations,
* the statement language with ``~`` (with optional truncation ``T[a, b]``),
  ``target +=``, loops, conditionals and local declarations,
* the expression language with the full operator-precedence table, indexing,
  slices, array/row-vector literals and the ternary conditional.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.lexer import EOF, IDENT, INT, PUNCT, REAL, STRING, Token, tokenize

TYPE_KEYWORDS = {
    "int",
    "real",
    "vector",
    "row_vector",
    "matrix",
    "simplex",
    "ordered",
    "positive_ordered",
    "unit_vector",
    "cov_matrix",
    "corr_matrix",
    "cholesky_factor_corr",
    "cholesky_factor_cov",
    "array",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/="}


class ParseError(Exception):
    """Raised on a syntax error, with the offending location in the message."""


class Parser:
    """Token-stream parser producing an :class:`~repro.frontend.ast.Program`."""

    def __init__(self, source: str, name: str = "model"):
        self.source = source
        self.name = name
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, value: str, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.value == value and tok.kind in (PUNCT, IDENT)

    def _at_kind(self, kind: str, offset: int = 0) -> bool:
        return self._peek(offset).kind == kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def _expect(self, value: str) -> Token:
        tok = self._peek()
        if tok.value != value:
            raise ParseError(f"{tok.loc}: expected {value!r} but found {tok.value!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != IDENT:
            raise ParseError(f"{tok.loc}: expected an identifier but found {tok.value!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(f"{tok.loc}: {message} (found {tok.value!r})")

    # ------------------------------------------------------------------
    # program and blocks
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(source=self.source, name=self.name)
        while not self._at_kind(EOF):
            tok = self._peek()
            if tok.value == "functions":
                self._advance()
                program.functions = self._parse_functions_block()
            elif tok.value == "networks":
                self._advance()
                program.networks = self._parse_networks_block()
            elif tok.value == "data":
                self._advance()
                program.data = self._parse_block()
            elif tok.value == "transformed" and self._peek(1).value == "data":
                self._advance()
                self._advance()
                program.transformed_data = self._parse_block()
            elif tok.value == "parameters":
                self._advance()
                program.parameters = self._parse_block()
            elif tok.value == "transformed" and self._peek(1).value == "parameters":
                self._advance()
                self._advance()
                program.transformed_parameters = self._parse_block()
            elif tok.value == "model":
                self._advance()
                program.model = self._parse_block()
            elif tok.value == "generated" and self._peek(1).value == "quantities":
                self._advance()
                self._advance()
                program.generated_quantities = self._parse_block()
            elif tok.value == "guide" and self._peek(1).value == "parameters":
                self._advance()
                self._advance()
                program.guide_parameters = self._parse_block()
            elif tok.value == "guide":
                self._advance()
                program.guide = self._parse_block()
            else:
                raise self._error("expected a block keyword")
        return program

    def _parse_block(self) -> ast.Block:
        self._expect("{")
        block = ast.Block()
        in_decl_prefix = True
        while not self._at("}"):
            if self._at_kind(EOF):
                raise self._error("unexpected end of input inside a block")
            if in_decl_prefix and self._starts_declaration():
                block.decls.append(self._parse_declaration())
            else:
                in_decl_prefix = False
                block.stmts.append(self._parse_statement())
        self._expect("}")
        return block

    def _parse_functions_block(self) -> List[ast.FunctionDef]:
        self._expect("{")
        functions: List[ast.FunctionDef] = []
        while not self._at("}"):
            functions.append(self._parse_function_def())
        self._expect("}")
        return functions

    def _parse_networks_block(self) -> List[ast.NetworkDecl]:
        self._expect("{")
        networks: List[ast.NetworkDecl] = []
        while not self._at("}"):
            loc = self._peek().loc
            ret_type, ret_dims = self._parse_function_return_type()
            name = self._expect_ident().value
            args = self._parse_function_args()
            self._expect(";")
            networks.append(
                ast.NetworkDecl(name=name, return_type=ret_type, return_array_dims=ret_dims,
                                args=args, loc=loc)
            )
        self._expect("}")
        return networks

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------
    def _parse_function_return_type(self):
        tok = self._peek()
        if tok.value == "void":
            self._advance()
            return None, 0
        base = self._parse_base_type()
        dims = 0
        if self._at("["):
            # Return types use `real[,]`-style dimension counts.
            self._advance()
            dims = 1
            while self._at(","):
                self._advance()
                dims += 1
            self._expect("]")
        return base, dims

    def _parse_function_args(self) -> List[ast.FunctionArg]:
        self._expect("(")
        args: List[ast.FunctionArg] = []
        while not self._at(")"):
            is_data = False
            if self._at("data"):
                self._advance()
                is_data = True
            base = self._parse_base_type()
            dims = 0
            if self._at("["):
                self._advance()
                dims = 1
                while self._at(","):
                    self._advance()
                    dims += 1
                self._expect("]")
            name = self._expect_ident().value
            args.append(ast.FunctionArg(name=name, base_type=base, array_dims=dims, is_data=is_data))
            if self._at(","):
                self._advance()
        self._expect(")")
        return args

    def _parse_function_def(self) -> ast.FunctionDef:
        loc = self._peek().loc
        ret_type, ret_dims = self._parse_function_return_type()
        name = self._expect_ident().value
        args = self._parse_function_args()
        body_block = self._parse_braced_statements()
        return ast.FunctionDef(name=name, return_type=ret_type, return_array_dims=ret_dims,
                               args=args, body=body_block, loc=loc)

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def _starts_declaration(self) -> bool:
        tok = self._peek()
        if tok.kind != IDENT or tok.value not in TYPE_KEYWORDS:
            return False
        # `real ...` might also start an expression only if `real` were a
        # variable, which Stan forbids, so the keyword check is sufficient.
        return True

    def _parse_base_type(self) -> ast.BaseType:
        tok = self._expect_ident()
        name = tok.value
        if name not in TYPE_KEYWORDS or name == "array":
            raise ParseError(f"{tok.loc}: expected a type, found {name!r}")
        base = ast.BaseType(name=name)
        return base

    def _parse_constraint(self) -> ast.TypeConstraint:
        constraint = ast.TypeConstraint()
        if not self._at("<"):
            return constraint
        self._advance()
        while True:
            key = self._expect_ident().value
            self._expect("=")
            value = self._parse_expression(no_greater=True)
            if key == "lower":
                constraint.lower = value
            elif key == "upper":
                constraint.upper = value
            elif key == "offset":
                constraint.offset = value
            elif key == "multiplier":
                constraint.multiplier = value
            else:
                raise self._error(f"unknown constraint keyword {key!r}")
            if self._at(","):
                self._advance()
                continue
            break
        self._expect(">")
        return constraint

    def _parse_type_sizes(self) -> List[ast.Expr]:
        sizes: List[ast.Expr] = []
        if self._at("["):
            self._advance()
            sizes.append(self._parse_expression())
            while self._at(","):
                self._advance()
                sizes.append(self._parse_expression())
            self._expect("]")
        return sizes

    def _parse_declaration(self) -> ast.Decl:
        loc = self._peek().loc
        array_dims: List[ast.Expr] = []
        # New-style array syntax: array[N, M] real x;
        if self._at("array"):
            self._advance()
            array_dims = self._parse_type_sizes()
        base = self._parse_base_type()
        constraint = self._parse_constraint()
        if base.name in ("vector", "row_vector", "matrix", "simplex", "ordered",
                         "positive_ordered", "unit_vector", "cov_matrix", "corr_matrix",
                         "cholesky_factor_corr", "cholesky_factor_cov"):
            base.sizes = self._parse_type_sizes()
        name = self._expect_ident().value
        # Old-style trailing array dims: real x[N, M];
        if self._at("["):
            array_dims = array_dims + self._parse_type_sizes()
        init: Optional[ast.Expr] = None
        if self._at("="):
            self._advance()
            init = self._parse_expression()
        self._expect(";")
        return ast.Decl(name=name, base_type=base, constraint=constraint,
                        array_dims=array_dims, init=init, loc=loc)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_braced_statements(self) -> List[ast.Stmt]:
        self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._at("}"):
            if self._at_kind(EOF):
                raise self._error("unexpected end of input inside a statement block")
            stmts.append(self._parse_statement())
        self._expect("}")
        return stmts

    def _parse_statement_or_block(self) -> List[ast.Stmt]:
        if self._at("{"):
            return self._parse_braced_statements()
        return [self._parse_statement()]

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        loc = tok.loc
        if self._starts_declaration():
            decl = self._parse_declaration()
            return ast.DeclStmt(decl=decl, loc=loc)
        if tok.value == "for":
            return self._parse_for()
        if tok.value == "while":
            return self._parse_while()
        if tok.value == "if":
            return self._parse_if()
        if tok.value == "{":
            return ast.BlockStmt(body=self._parse_braced_statements(), loc=loc)
        if tok.value == ";":
            self._advance()
            return ast.Skip(loc=loc)
        if tok.value == "break":
            self._advance()
            self._expect(";")
            return ast.Break(loc=loc)
        if tok.value == "continue":
            self._advance()
            self._expect(";")
            return ast.Continue(loc=loc)
        if tok.value == "return":
            self._advance()
            value = None
            if not self._at(";"):
                value = self._parse_expression()
            self._expect(";")
            return ast.Return(value=value, loc=loc)
        if tok.value == "print":
            self._advance()
            args = self._parse_call_args()
            self._expect(";")
            return ast.PrintStmt(args=args, loc=loc)
        if tok.value == "reject":
            self._advance()
            args = self._parse_call_args()
            self._expect(";")
            return ast.RejectStmt(args=args, loc=loc)
        if tok.value == "target" and self._peek(1).value == "+=":
            self._advance()
            self._advance()
            value = self._parse_expression()
            self._expect(";")
            return ast.TargetPlus(value=value, loc=loc)
        if tok.value == "increment_log_prob":
            # Deprecated alias for `target +=`.
            self._advance()
            args = self._parse_call_args()
            self._expect(";")
            value = args[0] if args else ast.RealLiteral(value=0.0)
            return ast.TargetPlus(value=value, loc=loc)
        # Otherwise: expression-first statements (assignment, ~, call).
        expr = self._parse_expression()
        if self._at("~"):
            self._advance()
            return self._finish_tilde(expr, loc)
        if self._peek().value in ASSIGN_OPS:
            op = self._advance().value
            value = self._parse_expression()
            self._expect(";")
            return ast.Assign(lhs=expr, value=value, op=op, loc=loc)
        if self._at("<") and self._peek(1).value == "-":
            # Deprecated arrow assignment `x <- e`.
            self._advance()
            self._advance()
            value = self._parse_expression()
            self._expect(";")
            return ast.Assign(lhs=expr, value=value, op="=", loc=loc)
        self._expect(";")
        if isinstance(expr, ast.FunctionCall):
            return ast.CallStmt(call=expr, loc=loc)
        return ast.Skip(loc=loc)

    def _finish_tilde(self, lhs: ast.Expr, loc) -> ast.TildeStmt:
        dist_tok = self._expect_ident()
        args = self._parse_call_args()
        stmt = ast.TildeStmt(lhs=lhs, dist_name=dist_tok.value, args=args, loc=loc)
        if self._at("T"):
            self._advance()
            self._expect("[")
            stmt.has_truncation = True
            if not self._at(","):
                stmt.truncation_lower = self._parse_expression()
            self._expect(",")
            if not self._at("]"):
                stmt.truncation_upper = self._parse_expression()
            self._expect("]")
        self._expect(";")
        return stmt

    def _parse_for(self) -> ast.For:
        loc = self._peek().loc
        self._expect("for")
        self._expect("(")
        var = self._expect_ident().value
        self._expect("in")
        first = self._parse_expression()
        stmt = ast.For(var=var, loc=loc)
        if self._at(":"):
            self._advance()
            stmt.lower = first
            stmt.upper = self._parse_expression()
        else:
            stmt.sequence = first
        self._expect(")")
        stmt.body = self._parse_statement_or_block()
        return stmt

    def _parse_while(self) -> ast.While:
        loc = self._peek().loc
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        body = self._parse_statement_or_block()
        return ast.While(cond=cond, body=body, loc=loc)

    def _parse_if(self) -> ast.If:
        loc = self._peek().loc
        self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then_body = self._parse_statement_or_block()
        else_body: List[ast.Stmt] = []
        if self._at("else"):
            self._advance()
            else_body = self._parse_statement_or_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, loc=loc)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_call_args(self) -> List[ast.Expr]:
        self._expect("(")
        args: List[ast.Expr] = []
        while not self._at(")"):
            args.append(self._parse_expression())
            # Both `,` and the conditioning bar `|` of `foo_lpdf(y | theta)`
            # separate arguments.
            if self._at(",") or self._at("|"):
                self._advance()
        self._expect(")")
        return args

    def _parse_expression(self, no_greater: bool = False) -> ast.Expr:
        return self._parse_ternary(no_greater)

    def _parse_ternary(self, no_greater: bool = False) -> ast.Expr:
        cond = self._parse_or(no_greater)
        if self._at("?"):
            loc = self._peek().loc
            self._advance()
            then = self._parse_expression(no_greater)
            self._expect(":")
            otherwise = self._parse_ternary(no_greater)
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise, loc=loc)
        return cond

    def _parse_or(self, no_greater: bool) -> ast.Expr:
        left = self._parse_and(no_greater)
        while self._at("||"):
            loc = self._peek().loc
            self._advance()
            right = self._parse_and(no_greater)
            left = ast.BinaryOp(op="||", left=left, right=right, loc=loc)
        return left

    def _parse_and(self, no_greater: bool) -> ast.Expr:
        left = self._parse_equality(no_greater)
        while self._at("&&"):
            loc = self._peek().loc
            self._advance()
            right = self._parse_equality(no_greater)
            left = ast.BinaryOp(op="&&", left=left, right=right, loc=loc)
        return left

    def _parse_equality(self, no_greater: bool) -> ast.Expr:
        left = self._parse_comparison(no_greater)
        while self._peek().value in ("==", "!="):
            op = self._advance().value
            right = self._parse_comparison(no_greater)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_comparison(self, no_greater: bool) -> ast.Expr:
        left = self._parse_additive(no_greater)
        while True:
            tok = self._peek()
            if tok.value in ("<", "<=", ">="):
                op = self._advance().value
            elif tok.value == ">" and not no_greater:
                op = self._advance().value
            else:
                break
            right = self._parse_additive(no_greater)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_additive(self, no_greater: bool) -> ast.Expr:
        left = self._parse_multiplicative(no_greater)
        while self._peek().value in ("+", "-"):
            op = self._advance().value
            right = self._parse_multiplicative(no_greater)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self, no_greater: bool) -> ast.Expr:
        left = self._parse_unary(no_greater)
        while self._peek().value in ("*", "/", ".*", "./", "%", "%/%"):
            op = self._advance().value
            right = self._parse_unary(no_greater)
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self, no_greater: bool) -> ast.Expr:
        tok = self._peek()
        if tok.value in ("-", "+", "!"):
            self._advance()
            operand = self._parse_unary(no_greater)
            return ast.UnaryOp(op=tok.value, operand=operand, loc=tok.loc)
        return self._parse_power(no_greater)

    def _parse_power(self, no_greater: bool) -> ast.Expr:
        base = self._parse_postfix(no_greater)
        if self._at("^"):
            loc = self._peek().loc
            self._advance()
            exponent = self._parse_unary(no_greater)  # right-associative
            return ast.BinaryOp(op="^", left=base, right=exponent, loc=loc)
        return base

    def _parse_postfix(self, no_greater: bool) -> ast.Expr:
        expr = self._parse_primary(no_greater)
        while True:
            if self._at("["):
                expr = self._parse_indexing(expr)
            elif self._at("'"):
                loc = self._peek().loc
                self._advance()
                expr = ast.Transpose(operand=expr, loc=loc)
            else:
                break
        return expr

    def _parse_indexing(self, base: ast.Expr) -> ast.Expr:
        loc = self._peek().loc
        self._expect("[")
        indices: List[ast.Index] = []
        while not self._at("]"):
            indices.append(self._parse_index())
            if self._at(","):
                self._advance()
        self._expect("]")
        return ast.Indexed(base=base, indices=indices, loc=loc)

    def _parse_index(self) -> ast.Index:
        if self._at(":"):
            self._advance()
            if self._at(",") or self._at("]"):
                return ast.Index(is_slice=True)
            upper = self._parse_expression()
            return ast.Index(is_slice=True, upper=upper)
        expr = self._parse_expression()
        if self._at(":"):
            self._advance()
            if self._at(",") or self._at("]"):
                return ast.Index(is_slice=True, lower=expr)
            upper = self._parse_expression()
            return ast.Index(is_slice=True, lower=expr, upper=upper)
        return ast.Index(expr=expr)

    def _parse_primary(self, no_greater: bool) -> ast.Expr:
        tok = self._peek()
        loc = tok.loc
        if tok.kind == INT:
            self._advance()
            return ast.IntLiteral(value=int(tok.value), loc=loc)
        if tok.kind == REAL:
            self._advance()
            return ast.RealLiteral(value=float(tok.value), loc=loc)
        if tok.kind == STRING:
            self._advance()
            return ast.StringLiteral(value=tok.value, loc=loc)
        if tok.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if tok.value == "{":
            self._advance()
            elements = [self._parse_expression()]
            while self._at(","):
                self._advance()
                elements.append(self._parse_expression())
            self._expect("}")
            return ast.ArrayLiteral(elements=elements, loc=loc)
        if tok.value == "[":
            self._advance()
            elements: List[ast.Expr] = []
            while not self._at("]"):
                elements.append(self._parse_expression())
                if self._at(","):
                    self._advance()
            self._expect("]")
            return ast.RowVectorLiteral(elements=elements, loc=loc)
        if tok.kind == IDENT:
            self._advance()
            if self._at("("):
                args = self._parse_call_args()
                # `foo(a | b, c)` conditional-bar syntax for lpdf calls.
                return ast.FunctionCall(name=tok.value, args=args, loc=loc)
            return ast.Variable(name=tok.value, loc=loc)
        raise self._error("expected an expression")


def parse_program(source: str, name: str = "model") -> ast.Program:
    """Parse a complete Stan (or DeepStan) program from source text."""
    return Parser(source, name=name).parse_program()
