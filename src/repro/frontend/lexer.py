"""Lexer for the Stan language (plus the DeepStan block keywords).

Produces a flat list of :class:`Token` objects with source locations.
Handles line comments (``//`` and ``#``), block comments (``/* ... */``),
numeric literals (integer, real, scientific notation), string literals and the
full Stan operator set including ``+=``, ``~``, ``.*``, ``./``, ``'``
(transpose) and the ternary ``? :``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.frontend.ast import Location


class LexerError(Exception):
    """Raised on malformed input (unterminated comment/string, bad char)."""


# Token kinds
IDENT = "IDENT"
INT = "INT"
REAL = "REAL"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = {
    "functions",
    "data",
    "transformed",
    "parameters",
    "model",
    "generated",
    "quantities",
    "networks",
    "guide",
    "for",
    "in",
    "while",
    "if",
    "else",
    "return",
    "break",
    "continue",
    "print",
    "reject",
    "target",
    "int",
    "real",
    "vector",
    "row_vector",
    "matrix",
    "simplex",
    "ordered",
    "positive_ordered",
    "unit_vector",
    "cov_matrix",
    "corr_matrix",
    "cholesky_factor_corr",
    "cholesky_factor_cov",
    "lower",
    "upper",
    "offset",
    "multiplier",
    "void",
    "T",
}

# Multi-character punctuation, longest first so maximal munch works.
MULTI_PUNCT = [
    "+=",
    "-=",
    "*=",
    "/=",
    ".*",
    "./",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "%/%",
]

SINGLE_PUNCT = set("+-*/^'!<>=~?:;,.(){}[]|%&")


@dataclass
class Token:
    kind: str
    value: str
    loc: Location

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.loc})"


class Lexer:
    """Tokenise Stan source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: List[Token] = []

    # ------------------------------------------------------------------
    def _loc(self) -> Location:
        return Location(self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    # ------------------------------------------------------------------
    def tokenize(self) -> List[Token]:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
                continue
            if ch == "#":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
                continue
            if ch.isalpha() or ch == "_":
                self._lex_identifier()
                continue
            if ch == '"':
                self._lex_string()
                continue
            self._lex_punct()
        self.tokens.append(Token(EOF, "", self._loc()))
        return self.tokens

    # ------------------------------------------------------------------
    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        loc = self._loc()
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexerError(f"unterminated block comment starting at {loc}")

    def _lex_number(self) -> None:
        loc = self._loc()
        start = self.pos
        is_real = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        self.tokens.append(Token(REAL if is_real else INT, text, loc))

    def _lex_identifier(self) -> None:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        # DeepStan network parameters use dotted paths (mlp.l1.weight); treat a
        # dot immediately followed by an identifier character as part of the name.
        while self._peek() == "." and (self._peek(1).isalpha() or self._peek(1) == "_"):
            self._advance()
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
        text = self.source[start:self.pos]
        self.tokens.append(Token(IDENT, text, loc))

    def _lex_string(self) -> None:
        loc = self._loc()
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\n":
                raise LexerError(f"unterminated string literal at {loc}")
            self._advance()
        if self.pos >= len(self.source):
            raise LexerError(f"unterminated string literal at {loc}")
        text = self.source[start:self.pos]
        self._advance()  # closing quote
        self.tokens.append(Token(STRING, text, loc))

    def _lex_punct(self) -> None:
        loc = self._loc()
        for punct in MULTI_PUNCT:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                self.tokens.append(Token(PUNCT, punct, loc))
                return
        ch = self._peek()
        if ch in SINGLE_PUNCT:
            self._advance()
            self.tokens.append(Token(PUNCT, ch, loc))
            return
        raise LexerError(f"unexpected character {ch!r} at {loc}")


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper returning the token list for ``source``."""
    return Lexer(source).tokenize()
