"""Stan language frontend: lexer, parser, AST and semantic checks.

This plays the role of the Stanc3 frontend stages the paper's backends hook
into: the compiler backends (:mod:`repro.core`) consume the typed AST produced
here, which corresponds to "the first internal language which is the closest
to the Stan source" mentioned in §4.
"""

from repro.frontend.ast import (
    Program,
    Decl,
    Block,
    FunctionDef,
    Stmt,
    Expr,
)
from repro.frontend.lexer import Lexer, Token, LexerError
from repro.frontend.parser import Parser, ParseError, parse_program
from repro.frontend.semantics import SemanticError, check_program

__all__ = [
    "Program",
    "Decl",
    "Block",
    "FunctionDef",
    "Stmt",
    "Expr",
    "Lexer",
    "Token",
    "LexerError",
    "Parser",
    "ParseError",
    "parse_program",
    "SemanticError",
    "check_program",
]
