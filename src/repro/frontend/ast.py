"""Abstract syntax tree for the Stan subset formalised in §3.1 of the paper.

The grammar covers the full block structure (``functions``, ``data``,
``transformed data``, ``parameters``, ``transformed parameters``, ``model``,
``generated quantities``), declarations with type constraints, the statement
language (assignment, ``~``, ``target +=``, loops, conditionals) and the
expression language (literals, variables, indexing, function calls, operators,
array/vector literals) — plus the DeepStan extension blocks
(``networks``, ``guide parameters``, ``guide``) of §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


# ----------------------------------------------------------------------
# source locations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Location:
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    """Base class for expressions."""

    loc: Location = field(default_factory=Location, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class RealLiteral(Expr):
    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Variable(Expr):
    name: str = ""


@dataclass
class BinaryOp(Expr):
    op: str = "+"
    left: Expr = None
    right: Expr = None


@dataclass
class UnaryOp(Expr):
    op: str = "-"
    operand: Expr = None


@dataclass
class Conditional(Expr):
    """Ternary expression ``cond ? a : b``."""

    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class FunctionCall(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index:
    """One index inside brackets: a single expression, a slice, or ``:``."""

    expr: Optional[Expr] = None
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    is_slice: bool = False

    @property
    def is_all(self) -> bool:
        return self.is_slice and self.lower is None and self.upper is None


@dataclass
class Indexed(Expr):
    base: Expr = None
    indices: List[Index] = field(default_factory=list)


@dataclass
class ArrayLiteral(Expr):
    """Brace array literal ``{e1, ..., en}``."""

    elements: List[Expr] = field(default_factory=list)


@dataclass
class RowVectorLiteral(Expr):
    """Bracket literal ``[e1, ..., en]`` (row vector / matrix rows)."""

    elements: List[Expr] = field(default_factory=list)


@dataclass
class Range(Expr):
    """A ``lower:upper`` range used in loop bounds and slices."""

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None


@dataclass
class Transpose(Expr):
    operand: Expr = None


# ----------------------------------------------------------------------
# types and declarations
# ----------------------------------------------------------------------
@dataclass
class TypeConstraint:
    """``<lower=e, upper=e>`` (or offset/multiplier, which we parse and keep)."""

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    offset: Optional[Expr] = None
    multiplier: Optional[Expr] = None

    @property
    def is_trivial(self) -> bool:
        return self.lower is None and self.upper is None


@dataclass
class BaseType:
    """Primitive Stan type, possibly sized (vector/matrix) or specialised."""

    name: str = "real"  # int, real, vector, row_vector, matrix, simplex,
    #                      ordered, positive_ordered, unit_vector, cov_matrix,
    #                      corr_matrix, cholesky_factor_corr, cholesky_factor_cov
    sizes: List[Expr] = field(default_factory=list)

    @property
    def is_integer(self) -> bool:
        return self.name == "int"

    @property
    def is_constrained_vector(self) -> bool:
        return self.name in (
            "simplex",
            "ordered",
            "positive_ordered",
            "unit_vector",
        )


@dataclass
class Decl:
    """A variable declaration with optional constraint, array dims and initialiser."""

    name: str = ""
    base_type: BaseType = field(default_factory=BaseType)
    constraint: TypeConstraint = field(default_factory=TypeConstraint)
    array_dims: List[Expr] = field(default_factory=list)
    init: Optional[Expr] = None
    loc: Location = field(default_factory=Location, compare=False)

    @property
    def dims(self) -> List[Expr]:
        """All dimensions: array dims then container sizes."""
        return list(self.array_dims) + list(self.base_type.sizes)

    @property
    def is_scalar(self) -> bool:
        return not self.dims


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    loc: Location = field(default_factory=Location, compare=False)


@dataclass
class Assign(Stmt):
    """``lhs = e`` or compound ``lhs op= e`` (op in +,-,*,/)."""

    lhs: Expr = None
    value: Expr = None
    op: str = "="


@dataclass
class TildeStmt(Stmt):
    """``e ~ dist(args)`` with optional truncation ``T[lower, upper]``."""

    lhs: Expr = None
    dist_name: str = ""
    args: List[Expr] = field(default_factory=list)
    truncation_lower: Optional[Expr] = None
    truncation_upper: Optional[Expr] = None
    has_truncation: bool = False


@dataclass
class TargetPlus(Stmt):
    """``target += e``."""

    value: Expr = None


@dataclass
class DeclStmt(Stmt):
    """A local declaration appearing inside a block body."""

    decl: Decl = None


@dataclass
class For(Stmt):
    """``for (x in e1:e2) body`` or ``for (x in e) body`` (collection loop)."""

    var: str = ""
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    sequence: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)

    @property
    def is_range(self) -> bool:
        return self.sequence is None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class BlockStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Skip(Stmt):
    pass


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class PrintStmt(Stmt):
    args: List[Expr] = field(default_factory=list)


@dataclass
class RejectStmt(Stmt):
    args: List[Expr] = field(default_factory=list)


@dataclass
class CallStmt(Stmt):
    """A bare function-call statement (void functions / rng calls)."""

    call: FunctionCall = None


# ----------------------------------------------------------------------
# functions, networks, blocks, program
# ----------------------------------------------------------------------
@dataclass
class FunctionArg:
    name: str = ""
    base_type: BaseType = field(default_factory=BaseType)
    array_dims: int = 0
    is_data: bool = False


@dataclass
class FunctionDef:
    name: str = ""
    return_type: Optional[BaseType] = None
    return_array_dims: int = 0
    args: List[FunctionArg] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    loc: Location = field(default_factory=Location, compare=False)


@dataclass
class NetworkDecl:
    """A DeepStan ``networks`` block entry: an imported neural network (§5.2)."""

    name: str = ""
    return_type: Optional[BaseType] = None
    return_array_dims: int = 0
    args: List[FunctionArg] = field(default_factory=list)
    loc: Location = field(default_factory=Location, compare=False)


@dataclass
class Block:
    """One program block: declarations followed by statements."""

    decls: List[Decl] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.decls and not self.stmts


@dataclass
class Program:
    """A complete (Deep)Stan program."""

    functions: List[FunctionDef] = field(default_factory=list)
    networks: List[NetworkDecl] = field(default_factory=list)
    data: Block = field(default_factory=Block)
    transformed_data: Block = field(default_factory=Block)
    parameters: Block = field(default_factory=Block)
    transformed_parameters: Block = field(default_factory=Block)
    model: Block = field(default_factory=Block)
    generated_quantities: Block = field(default_factory=Block)
    guide_parameters: Block = field(default_factory=Block)
    guide: Block = field(default_factory=Block)
    source: str = ""
    name: str = "model"

    # ------------------------------------------------------------------
    # the notation functions of §3.1
    # ------------------------------------------------------------------
    def data_decls(self) -> List[Decl]:
        """``data(p)`` — declarations of observed variables."""
        return list(self.data.decls)

    def params_decls(self) -> List[Decl]:
        """``params(p)`` — declarations of latent parameters."""
        return list(self.parameters.decls)

    def model_stmts(self) -> List[Stmt]:
        """``model(p)`` — the statements of the model block."""
        return list(self.model.stmts)

    @property
    def has_deepstan_extensions(self) -> bool:
        return bool(self.networks) or not self.guide.is_empty or not self.guide_parameters.is_empty


# ----------------------------------------------------------------------
# generic traversal helpers
# ----------------------------------------------------------------------
def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions (pre-order)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Conditional):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Indexed):
        yield from walk_expr(expr.base)
        for idx in expr.indices:
            if idx.expr is not None:
                yield from walk_expr(idx.expr)
            if idx.lower is not None:
                yield from walk_expr(idx.lower)
            if idx.upper is not None:
                yield from walk_expr(idx.upper)
    elif isinstance(expr, (ArrayLiteral, RowVectorLiteral)):
        for element in expr.elements:
            yield from walk_expr(element)
    elif isinstance(expr, Range):
        if expr.lower is not None:
            yield from walk_expr(expr.lower)
        if expr.upper is not None:
            yield from walk_expr(expr.upper)
    elif isinstance(expr, Transpose):
        yield from walk_expr(expr.operand)


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement in a statement list, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, For):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, BlockStmt):
            yield from walk_stmts(stmt.body)


def expr_variables(expr: Expr) -> List[str]:
    """Names of all variables appearing in an expression."""
    return [node.name for node in walk_expr(expr) if isinstance(node, Variable)]


def assigned_variables(stmts: Sequence[Stmt]) -> List[str]:
    """Names assigned anywhere in the statements (the ``lhs`` set of §3.3)."""
    names: List[str] = []

    def lhs_name(expr: Expr) -> Optional[str]:
        if isinstance(expr, Variable):
            return expr.name
        if isinstance(expr, Indexed):
            return lhs_name(expr.base)
        return None

    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Assign):
            name = lhs_name(stmt.lhs)
            if name is not None and name not in names:
                names.append(name)
        elif isinstance(stmt, For):
            if stmt.var not in names:
                names.append(stmt.var)
        elif isinstance(stmt, DeclStmt) and stmt.decl.init is not None:
            if stmt.decl.name not in names:
                names.append(stmt.decl.name)
    return names
