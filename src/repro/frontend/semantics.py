"""Semantic checks over the parsed program (the Stanc3 "semantic check" stage).

RQ1 of the paper reports that Stanc3 semantic checks reject 10 of the 541
example models before the backends even run; this module provides the
equivalent gate for our pipeline.  The checks are deliberately scoped to what
the compilation schemes rely on:

* every variable used is declared (data, parameters, transformed blocks,
  local declarations, loop indices, function arguments, networks);
* parameters are not assigned in the model block (Stan forbids it, and
  Lemma 3.1 of the paper depends on it);
* ``target`` is only accessed through ``target +=`` (Assumption 2);
* observed data never appears on the left of an assignment;
* declared types pass basic well-formedness (``int`` parameters are rejected
  like Stan does on the default path, and admitted as bounded discrete
  latents when the enumeration engine is enabled — see
  :func:`check_program`'s ``allow_int_parameters``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.frontend import ast

# Functions from the Stan standard library and common math builtins; used to
# avoid reporting calls as undefined variables.  This is a whitelist for error
# messages only — unknown functions are reported at code-generation time.
BUILTIN_FUNCTIONS = {
    "abs", "fabs", "fmin", "fmax", "min", "max", "sum", "prod", "mean", "sd",
    "variance", "log", "log1p", "log1m", "log10", "log2", "exp", "expm1",
    "sqrt", "square", "pow", "inv", "inv_sqrt", "inv_logit", "logit", "cbrt",
    "erf", "erfc", "phi", "Phi", "Phi_approx", "tgamma", "lgamma", "digamma",
    "lmgamma", "lbeta", "binomial_coefficient_log", "choose", "bessel_first_kind",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
    "floor", "ceil", "round", "trunc", "fmod", "fdim", "step", "int_step",
    "is_inf", "is_nan", "fma", "multiply_log", "lmultiply",
    "dot_product", "dot_self", "columns_dot_product", "rows_dot_product",
    "rep_vector", "rep_row_vector", "rep_matrix", "rep_array",
    "rows", "cols", "num_elements", "size", "dims",
    "col", "row", "block", "sub_col", "sub_row", "head", "tail", "segment",
    "append_col", "append_row", "append_array", "to_vector", "to_row_vector",
    "to_matrix", "to_array_1d", "to_array_2d", "diag_matrix", "diagonal",
    "diag_pre_multiply", "diag_post_multiply", "quad_form", "quad_form_diag",
    "crossprod", "tcrossprod", "multiply_lower_tri_self_transpose",
    "cholesky_decompose", "inverse", "transpose", "determinant", "log_determinant",
    "mdivide_left_tri_low", "mdivide_right_tri_low", "mdivide_left", "mdivide_right",
    "softmax", "log_softmax", "log_sum_exp", "cumulative_sum", "sort_asc",
    "sort_desc", "sort_indices_asc", "sort_indices_desc", "rank", "reverse",
    "inv_cloglog", "cloglog", "expit",
    "cov_exp_quad", "distance", "squared_distance",
    "machine_precision", "positive_infinity", "negative_infinity", "not_a_number",
    "e", "pi", "sqrt2", "log2", "log10",
    "integrate_ode_rk45", "integrate_ode_bdf", "ode_rk45", "ode_bdf",
    "logistic_sigmoid",
}

DISTRIBUTION_SUFFIXES = ("_lpdf", "_lpmf", "_lcdf", "_lccdf", "_cdf", "_rng", "_log")


class SemanticError(Exception):
    """Raised when a program fails the semantic checks."""


@dataclass
class SymbolInfo:
    name: str
    kind: str  # data, transformed_data, parameter, transformed_parameter,
    #            generated_quantity, local, loop_index, guide_parameter, network, function
    decl: Optional[ast.Decl] = None


@dataclass
class SymbolTable:
    """Flat symbol table with block-kind tagging."""

    symbols: Dict[str, SymbolInfo] = field(default_factory=dict)

    def declare(self, name: str, kind: str, decl: Optional[ast.Decl] = None,
                allow_redeclare: bool = False) -> None:
        if name in self.symbols and not allow_redeclare:
            raise SemanticError(f"variable {name!r} declared more than once")
        self.symbols[name] = SymbolInfo(name=name, kind=kind, decl=decl)

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def kind_of(self, name: str) -> Optional[str]:
        info = self.symbols.get(name)
        return info.kind if info else None

    def of_kind(self, *kinds: str) -> List[SymbolInfo]:
        return [info for info in self.symbols.values() if info.kind in kinds]


def build_symbol_table(program: ast.Program) -> SymbolTable:
    """Collect all block-level declarations of a program."""
    table = SymbolTable()
    for func in program.functions:
        table.declare(func.name, "function")
    for net in program.networks:
        table.declare(net.name, "network")
    block_kinds = [
        (program.data, "data"),
        (program.transformed_data, "transformed_data"),
        (program.parameters, "parameter"),
        (program.transformed_parameters, "transformed_parameter"),
        (program.model, "model_local"),
        (program.generated_quantities, "generated_quantity"),
        (program.guide_parameters, "guide_parameter"),
        (program.guide, "guide_local"),
    ]
    for block, kind in block_kinds:
        for decl in block.decls:
            table.declare(decl.name, kind)
            if kind == "parameter":
                table.symbols[decl.name].decl = decl
            else:
                table.symbols[decl.name].decl = decl
    return table


def _lhs_base_name(expr: ast.Expr) -> Optional[str]:
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.Indexed):
        return _lhs_base_name(expr.base)
    return None


def _check_int_parameters(program: ast.Program, allow_enumeration: bool) -> None:
    """Gate ``int`` parameter declarations.

    Stan rejects them outright; our enumeration engine accepts *bounded*
    integer parameters (finite support, marginalized exactly) when the
    caller opted in with ``enumerate="factorized"`` or ``"parallel"``.
    Unbounded declarations are rejected on every path — they have no exact
    enumeration.
    """
    for decl in program.parameters.decls:
        if not decl.base_type.is_integer:
            continue
        if not allow_enumeration:
            raise SemanticError(
                f"parameter {decl.name!r} is declared int; Stan requires continuous "
                "parameters. Unlike Stan, this compiler can marginalize bounded "
                "integer parameters exactly — recompile with "
                'enumerate="factorized" (compile_model(source, '
                'enumerate="factorized"); O(N*K)/O(T*K^2) sum-product '
                'marginalization, or enumerate="parallel" for the joint-table '
                "engine) to enable the discrete-latent enumeration engine."
            )
        if decl.constraint.lower is None or decl.constraint.upper is None:
            raise SemanticError(
                f"parameter {decl.name!r}: enumeration requires a finite support; "
                "declare both bounds (int<lower=.., upper=..>). Unbounded integer "
                "parameters (e.g. Poisson latents) cannot be marginalized exactly — "
                "truncate them to a bounded range."
            )


def _check_variables_declared(program: ast.Program, table: SymbolTable) -> None:
    known_functions = BUILTIN_FUNCTIONS | {f.name for f in program.functions} | {n.name for n in program.networks}

    def check_block(block: ast.Block, extra_locals: Set[str]) -> None:
        local_names = set(extra_locals)
        local_names.update(d.name for d in block.decls)
        for stmt in block.stmts:
            check_stmt(stmt, local_names)

    def check_stmt(stmt: ast.Stmt, local_names: Set[str]) -> None:
        if isinstance(stmt, ast.DeclStmt):
            local_names.add(stmt.decl.name)
            if stmt.decl.init is not None:
                check_expr(stmt.decl.init, local_names)
            for dim in stmt.decl.dims:
                check_expr(dim, local_names)
        elif isinstance(stmt, ast.Assign):
            check_expr(stmt.lhs, local_names)
            check_expr(stmt.value, local_names)
        elif isinstance(stmt, ast.TildeStmt):
            check_expr(stmt.lhs, local_names)
            for arg in stmt.args:
                check_expr(arg, local_names)
        elif isinstance(stmt, ast.TargetPlus):
            check_expr(stmt.value, local_names)
        elif isinstance(stmt, ast.For):
            if stmt.is_range:
                check_expr(stmt.lower, local_names)
                check_expr(stmt.upper, local_names)
            else:
                check_expr(stmt.sequence, local_names)
            inner = set(local_names)
            inner.add(stmt.var)
            for sub in stmt.body:
                check_stmt(sub, inner)
        elif isinstance(stmt, ast.While):
            check_expr(stmt.cond, local_names)
            for sub in stmt.body:
                check_stmt(sub, set(local_names))
        elif isinstance(stmt, ast.If):
            check_expr(stmt.cond, local_names)
            for sub in stmt.then_body:
                check_stmt(sub, set(local_names))
            for sub in stmt.else_body:
                check_stmt(sub, set(local_names))
        elif isinstance(stmt, ast.BlockStmt):
            inner = set(local_names)
            for sub in stmt.body:
                check_stmt(sub, inner)
        elif isinstance(stmt, (ast.PrintStmt, ast.RejectStmt)):
            for arg in stmt.args:
                check_expr(arg, local_names)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            check_expr(stmt.value, local_names)
        elif isinstance(stmt, ast.CallStmt):
            check_expr(stmt.call, local_names)

    def check_expr(expr: ast.Expr, local_names: Set[str]) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Variable):
                name = node.name
                if name in ("target",):
                    continue
                if name in local_names or name in table or name in known_functions:
                    continue
                raise SemanticError(f"{node.loc}: variable {name!r} is not declared")
            if isinstance(node, ast.FunctionCall):
                name = node.name
                base = name
                for suffix in DISTRIBUTION_SUFFIXES:
                    if name.endswith(suffix):
                        base = name[: -len(suffix)]
                        break
                if (name in known_functions or base in known_functions
                        or name in table or base in table
                        or _looks_like_distribution(base)):
                    continue
                # Unknown functions become code-generation errors, not semantic ones.

    function_arg_names: Set[str] = set()
    for func in program.functions:
        arg_names = {arg.name for arg in func.args}
        body_block = ast.Block(decls=[], stmts=func.body)
        check_block(body_block, arg_names)
        function_arg_names |= arg_names

    check_block(program.transformed_data, set())
    check_block(program.transformed_parameters, set())
    check_block(program.model, set())
    check_block(program.generated_quantities, set())
    check_block(program.guide, set())


def _looks_like_distribution(name: str) -> bool:
    from repro.core.stanlib import KNOWN_DISTRIBUTIONS

    return name in KNOWN_DISTRIBUTIONS


def _check_no_parameter_assignment(program: ast.Program, table: SymbolTable) -> None:
    parameter_names = {info.name for info in table.of_kind("parameter")}
    data_names = {info.name for info in table.of_kind("data")}
    for stmt in ast.walk_stmts(program.model.stmts + program.transformed_parameters.stmts):
        if isinstance(stmt, ast.Assign):
            name = _lhs_base_name(stmt.lhs)
            if name in parameter_names:
                raise SemanticError(
                    f"{stmt.loc}: cannot assign to parameter {name!r} "
                    "(parameters may only appear on the left of '~')"
                )
            if name in data_names:
                raise SemanticError(
                    f"{stmt.loc}: cannot assign to data variable {name!r}"
                )


def _check_target_usage(program: ast.Program) -> None:
    all_stmts = (
        program.transformed_data.stmts
        + program.transformed_parameters.stmts
        + program.model.stmts
        + program.generated_quantities.stmts
    )
    for stmt in ast.walk_stmts(all_stmts):
        exprs: List[ast.Expr] = []
        if isinstance(stmt, ast.Assign):
            exprs = [stmt.lhs, stmt.value]
        elif isinstance(stmt, ast.TildeStmt):
            exprs = [stmt.lhs] + stmt.args
        elif isinstance(stmt, ast.For) and stmt.is_range:
            exprs = [stmt.lower, stmt.upper]
        elif isinstance(stmt, ast.While):
            exprs = [stmt.cond]
        elif isinstance(stmt, ast.If):
            exprs = [stmt.cond]
        for expr in exprs:
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Variable) and node.name == "target":
                    raise SemanticError(
                        f"{stmt.loc}: expressions may not read 'target' (Assumption 2)"
                    )
                if isinstance(node, ast.FunctionCall) and node.name == "target":
                    raise SemanticError(
                        f"{stmt.loc}: expressions may not read 'target()' (Assumption 2)"
                    )


def check_program(program: ast.Program, allow_int_parameters: bool = False) -> SymbolTable:
    """Run all semantic checks; return the symbol table on success.

    ``allow_int_parameters=True`` (set by the enumerated compile path)
    admits *bounded* ``int`` parameter declarations as finite-support
    discrete latents instead of rejecting them like Stan does.
    """
    table = build_symbol_table(program)
    _check_int_parameters(program, allow_int_parameters)
    _check_variables_declared(program, table)
    _check_no_parameter_assignment(program, table)
    _check_target_usage(program)
    return table
