"""The unified engine configuration: one object for every evaluation knob.

:class:`EngineConfig` replaces the sprawl of positional keyword arguments
that accumulated on :func:`repro.compile_model` /
:class:`repro.infer.Potential` (``enumerate=``, ``max_enum_table_size=``,
``chain_method=``, ...) with a single declarative value:

>>> from repro import EngineConfig, compile_model
>>> cfg = EngineConfig(engine="compiled", enumerate="factorized")
>>> compiled = compile_model(source, engine=cfg)

``engine`` selects how the log-density tape is evaluated:

* ``"compiled"`` (default) — the recorded op graph is lowered once into a
  fused straight-line NumPy program (:mod:`repro.autodiff.compile`);
  validated bitwise against the interpreted tape on first call and demoted
  automatically when a model cannot be compiled (value-dependent control
  flow) or fails validation.
* ``"interpreted"`` — every evaluation replays the Python-object tape op by
  op (the pre-compilation behaviour; also the oracle the compiled engine is
  validated against).

The config is immutable and hashable so it can participate in cache keys;
``to_metadata()`` renders the resolved config for ``Posterior.metadata`` and
benchmark records.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Union

ENGINES = ("interpreted", "compiled")
ENUMERATE_MODES = (None, "parallel", "factorized")
CHAIN_METHODS = ("sequential", "vectorized")
#: accepted :class:`EnumConfig` strategies.  ``"auto"`` resolves, in order:
#: general tensor-contraction elimination -> the strict factorized engine ->
#: the joint assignment table -> error (TableSizeError when nothing fits).
ENUM_STRATEGIES = ("auto", "contract", "factorized", "parallel", "off")


@dataclass(frozen=True)
class EnumConfig:
    """Declarative configuration of discrete-latent marginalization.

    One object replaces the ``enumerate=`` / ``max_enum_table_size=`` kwarg
    sprawl.  Thread it through :func:`repro.compile_model` as
    ``compile_model(source, enum=EnumConfig(...))`` (or just
    ``enum="contract"``); the old spellings keep working as warn-once
    deprecated shims mapped onto this config.

    Parameters
    ----------
    strategy:
        ``"auto"`` (default; resolution order contract -> factorized ->
        joint table -> error), ``"contract"`` (general tensor variable
        elimination with a greedy contraction order — trees, grids,
        factorial HMMs), ``"factorized"`` (the strict independent/chain
        engine), ``"parallel"`` (the joint assignment table) or ``"off"``
        (reject discrete parameters).
    max_table_size:
        Cap on the joint enumeration table *and* on any single intermediate
        the contraction planner may materialize (``None`` = engine default,
        :data:`repro.enum.DEFAULT_MAX_TABLE_SIZE`).
    validate:
        Cross-validate the resolved strategy against the joint-table oracle
        at small sizes (one-way demotion on mismatch).  ``False`` trusts the
        graph-walk analysis outright.
    validation_table_cap:
        Largest joint table the oracle cross-validation is attempted at;
        beyond it the oracle itself is intractable.
    value_rtol / value_atol:
        Marginal-value agreement tolerances of the cross-strategy validation
        (different strategies sum identical terms in different orders, so
        bitwise agreement is structurally impossible).
    """

    strategy: str = "auto"
    max_table_size: Optional[int] = None
    validate: bool = True
    validation_table_cap: int = 4096
    value_rtol: float = 1e-10
    value_atol: float = 1e-8

    def __post_init__(self) -> None:
        if self.strategy not in ENUM_STRATEGIES:
            raise ValueError(
                f"unknown enum strategy {self.strategy!r}; expected one of "
                f"{ENUM_STRATEGIES}")
        if self.max_table_size is not None and int(self.max_table_size) < 1:
            raise ValueError("max_table_size must be a positive integer")
        if int(self.validation_table_cap) < 1:
            raise ValueError("validation_table_cap must be a positive integer")
        if not (self.value_rtol >= 0.0 and self.value_atol >= 0.0):
            raise ValueError("validation tolerances must be non-negative")

    @classmethod
    def coerce(cls, value: Union[None, str, "EnumConfig"],
               **overrides: Any) -> "EnumConfig":
        """Normalise ``enum=`` arguments to a config.

        Accepts ``None`` (defaults), a strategy name string, or a full
        :class:`EnumConfig`; ``overrides`` replace individual fields
        (``None`` overrides are ignored, mirroring
        :meth:`EngineConfig.coerce`).
        """
        if value is None:
            config = cls()
        elif isinstance(value, str):
            config = cls(strategy=value)
        elif isinstance(value, EnumConfig):
            config = value
        else:
            raise TypeError(
                f"enum must be a strategy name or an EnumConfig, got "
                f"{type(value).__name__}")
        effective = {k: v for k, v in overrides.items() if v is not None}
        if effective:
            config = config.replace(**effective)
        return config

    def replace(self, **changes: Any) -> "EnumConfig":
        """A copy of the config with ``changes`` applied (validated)."""
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state.update(changes)
        return EnumConfig(**state)

    def to_metadata(self) -> Dict[str, Any]:
        """The resolved config as a plain dict (metadata / JSON records)."""
        return {
            "strategy": self.strategy,
            "max_table_size": self.max_table_size,
            "validate": self.validate,
            "validation_table_cap": self.validation_table_cap,
            "value_rtol": self.value_rtol,
            "value_atol": self.value_atol,
        }


@dataclass(frozen=True)
class EngineConfig:
    """Declarative configuration of the evaluation engine.

    Parameters
    ----------
    engine:
        ``"compiled"`` (fused tape programs, default) or ``"interpreted"``.
    enumerate:
        Discrete-latent marginalization: ``None`` (reject int parameters),
        ``"parallel"`` (joint assignment table) or ``"factorized"``
        (recommended; per-element / chain-structured elimination).
    chain_method:
        Default multi-chain execution for MCMC fits: ``"sequential"`` or
        ``"vectorized"``.
    max_enum_table_size:
        Cap on the joint enumeration table (``None`` = engine default).
    grad_rtol / grad_atol:
        Gradient tolerance of the tiered validation contract: a fast path
        whose values match bitwise but whose gradients only match within
        these tolerances is demoted to ``value_fast`` (values from the fast
        path, gradients from the oracle).
    enum:
        The unified discrete-latent marginalization config
        (:class:`EnumConfig`); when set it takes precedence over the legacy
        ``enumerate`` / ``max_enum_table_size`` fields, which survive as
        deprecated spellings mapped onto it by :meth:`resolved_enum`.
    """

    engine: str = "compiled"
    enumerate: Optional[str] = None
    chain_method: str = "sequential"
    max_enum_table_size: Optional[int] = None
    grad_rtol: float = 1e-9
    grad_atol: float = 1e-12
    enum: Optional[EnumConfig] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.enumerate not in ENUMERATE_MODES:
            raise ValueError(
                f'unknown enumerate mode {self.enumerate!r}; expected None, '
                '"parallel" or "factorized"')
        if self.enum is not None and not isinstance(self.enum, EnumConfig):
            raise TypeError(
                f"enum must be an EnumConfig or None, got "
                f"{type(self.enum).__name__}")
        if self.chain_method not in CHAIN_METHODS:
            raise ValueError(
                f"unknown chain_method {self.chain_method!r}; expected one of "
                f"{CHAIN_METHODS}")
        if self.max_enum_table_size is not None and int(self.max_enum_table_size) < 1:
            raise ValueError("max_enum_table_size must be a positive integer")
        if not (self.grad_rtol >= 0.0 and self.grad_atol >= 0.0):
            raise ValueError("validation tolerances must be non-negative")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, value: Union[None, str, "EngineConfig"],
               **overrides: Any) -> "EngineConfig":
        """Normalise ``engine=`` arguments to a config.

        Accepts ``None`` (defaults), an engine name string, or a full
        :class:`EngineConfig`; ``overrides`` replace individual fields
        (``None`` overrides are ignored so legacy-kwarg shims can pass
        through unconditionally).
        """
        if value is None:
            config = cls()
        elif isinstance(value, str):
            config = cls(engine=value)
        elif isinstance(value, EngineConfig):
            config = value
        else:
            raise TypeError(
                f"engine must be an engine name or an EngineConfig, got "
                f"{type(value).__name__}")
        effective = {k: v for k, v in overrides.items() if v is not None}
        if effective:
            config = config.replace(**effective)
        return config

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy of the config with ``changes`` applied (validated)."""
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state.update(changes)
        return EngineConfig(**state)

    def resolved_enum(self) -> EnumConfig:
        """The effective :class:`EnumConfig` of this engine configuration.

        An explicit ``enum`` config wins (inheriting ``max_enum_table_size``
        when it does not set its own cap); otherwise the legacy
        ``enumerate`` spelling maps onto the matching strategy (``None`` ->
        ``"off"``), preserving the historical semantics exactly.
        """
        if self.enum is not None:
            if self.enum.max_table_size is None and \
                    self.max_enum_table_size is not None:
                return self.enum.replace(max_table_size=self.max_enum_table_size)
            return self.enum
        legacy = "off" if self.enumerate is None else self.enumerate
        return EnumConfig(strategy=legacy,
                          max_table_size=self.max_enum_table_size)

    def to_metadata(self) -> Dict[str, Any]:
        """The resolved config as a plain dict (metadata / JSON records)."""
        return {
            "engine": self.engine,
            "enumerate": self.enumerate,
            "chain_method": self.chain_method,
            "max_enum_table_size": self.max_enum_table_size,
            "grad_rtol": self.grad_rtol,
            "grad_atol": self.grad_atol,
            "enum": self.enum.to_metadata() if self.enum is not None else None,
        }
