"""Reproduction of "Compiling Stan to Generative Probabilistic Languages and
Extension to Deep Probabilistic Programming" (Baudart et al., PLDI 2021).

Top-level API:

* :func:`repro.compile_model` / :func:`repro.compile_file` — compile Stan (or
  DeepStan) source with one of the three compilation schemes (``generative``,
  ``comprehensive``, ``mixed``) targeting the ``pyro`` or ``numpyro`` runtime.
* :mod:`repro.stanref` — the Stan-semantics reference backend (interpreter +
  NUTS) used as the "Stan" baseline of the evaluation.
* :mod:`repro.infer` — NUTS/HMC, ADVI, SVI and diagnostics.
* :mod:`repro.deepstan` — explicit guides, neural networks, VAE and Bayesian
  neural networks (section 5).
* :mod:`repro.posteriordb` / :mod:`repro.corpus` — the bundled model/data
  registries standing in for PosteriorDB and ``example-models``.
"""

from repro.core import (
    CompiledModel,
    CompileError,
    NonGenerativeModelError,
    UnsupportedFeatureError,
    analyze_source,
    compile_file,
    compile_model,
)

__version__ = "0.1.0"

__all__ = [
    "compile_model",
    "compile_file",
    "analyze_source",
    "CompiledModel",
    "CompileError",
    "NonGenerativeModelError",
    "UnsupportedFeatureError",
    "__version__",
]
