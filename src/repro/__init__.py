"""Reproduction of "Compiling Stan to Generative Probabilistic Languages and
Extension to Deep Probabilistic Programming" (Baudart et al., PLDI 2021).

Top-level API:

* :func:`repro.compile_model` / :func:`repro.compile_file` — compile Stan (or
  DeepStan) source with one of the three compilation schemes (``generative``,
  ``comprehensive``, ``mixed``) targeting the ``pyro`` or ``numpyro`` runtime;
  string sources are memoised on ``(source, scheme, backend)``.
* ``compiled.condition(data).fit("nuts" | "hmc" | "vi" | "svi" | "importance" | "smc")``
  — the posterior-first pipeline; every fit satisfies
  :class:`repro.FitResult` and produces a :class:`repro.Posterior`
  (``save``/``load``, ``stack``/``concat``, cached ``summary``).  MCMC and
  autoguide-VI fits support ``checkpoint_every=``/``checkpoint_path=`` with
  bitwise-identical ``resume``.
* :mod:`repro.stanref` — the Stan-semantics reference backend (interpreter +
  NUTS) used as the "Stan" baseline of the evaluation.
* :mod:`repro.infer` — NUTS/HMC, ADVI, SVI and diagnostics.
* :mod:`repro.deepstan` — explicit guides, neural networks, VAE and Bayesian
  neural networks (section 5).
* :mod:`repro.posteriordb` / :mod:`repro.corpus` — the bundled model/data
  registries standing in for PosteriorDB and ``example-models``.
* :mod:`repro.serve` — the amortized posterior serving layer: train an
  :class:`repro.AmortizedModel` once, then answer concurrent ``data ->
  Posterior`` queries through the micro-batched, k-hat-trust-gated
  :class:`repro.PosteriorServer`.
"""

from repro.core import (
    CompiledModel,
    CompileError,
    ConditionedModel,
    NonGenerativeModelError,
    UnsupportedFeatureError,
    analyze_source,
    clear_compile_cache,
    compile_cache_info,
    compile_file,
    compile_model,
)
from repro.engine import EngineConfig, EnumConfig
from repro.enum import EnumerationError, TableSizeError, infer_discrete
from repro.infer.results import FitResult, Posterior
from repro.obs import ObsConfig, Telemetry, TraceLog
from repro.serve import AmortizedModel, PosteriorServer, ServerConfig
from repro.smc import ParticleEnsemble, StreamingFit

__version__ = "0.1.0"

__all__ = [
    "compile_model",
    "compile_file",
    "compile_cache_info",
    "clear_compile_cache",
    "analyze_source",
    "CompiledModel",
    "ConditionedModel",
    "EngineConfig",
    "EnumConfig",
    "ObsConfig",
    "Telemetry",
    "TraceLog",
    "Posterior",
    "FitResult",
    "CompileError",
    "NonGenerativeModelError",
    "UnsupportedFeatureError",
    "EnumerationError",
    "TableSizeError",
    "infer_discrete",
    "AmortizedModel",
    "PosteriorServer",
    "ServerConfig",
    "ParticleEnsemble",
    "StreamingFit",
    "__version__",
]
