"""Probabilistic primitives: ``sample``, ``observe``, ``factor``, ``param``.

These are the constructs of the GProb target language (§3.2) realised as a
Python API, following Pyro's design: each call builds a *message* that is
threaded through the stack of active effect handlers
(:mod:`repro.ppl.handlers`), which may fill in values (replay/substitute),
record the site (trace), or re-seed randomness (seed).

``observe(dist, value)`` is the syntactic shortcut of the paper:
``factor(dist.log_prob(value))`` — conditioning the execution on observed
data.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl.distributions.base import Distribution

# The handler stack; handlers push/pop themselves in __enter__/__exit__.
_HANDLER_STACK: list = []

# Fast log-density contexts (NumPyro-style potential evaluation).  When a
# context is active, the primitives bypass the effect-handler machinery and
# accumulate the log joint directly — this is the analogue of NumPyro
# extracting a pure potential function instead of re-tracing the model with
# messengers on every gradient evaluation, and is where the Pyro/NumPyro
# runtime speed difference of Table 3 comes from in this reproduction.
_FAST_STACK: list = []


class BatchMixingError(RuntimeError):
    """Raised when a batched evaluation would mix values across chains."""


class FastLogDensityContext:
    """Accumulates the log joint of a model execution without handlers.

    With ``batch_size=C`` the context runs in *vectorized multi-chain* mode:
    substituted latent values carry a leading chain axis of length ``C`` and
    :meth:`total` returns a ``(C,)`` tensor — each term is summed over its
    trailing (event) axes only, so every chain keeps its own log joint.  Terms
    that do not carry the chain axis (data-only contributions) are summed to a
    scalar and broadcast to all chains.

    With ``collect_names=True`` the context additionally records the site
    name of every accumulated term (in execution order) in ``term_names`` —
    the provenance the factorized enumeration engine needs to match each
    term back to the model statement that produced it.  ``observe``/``factor``
    sites get their generated names; anonymous additions record ``None``.
    """

    __slots__ = ("substitution", "log_prob_terms", "term_names", "rng", "batch_size")

    def __init__(self, substitution=None, rng=None, batch_size=None,
                 collect_names: bool = False):
        self.substitution = substitution or {}
        self.log_prob_terms = []
        self.term_names = [] if collect_names else None
        self.rng = rng or np.random.default_rng(0)
        self.batch_size = batch_size

    def add(self, term, name: Optional[str] = None) -> None:
        self.log_prob_terms.append(term)
        if self.term_names is not None:
            self.term_names.append(name)

    def total(self):
        from repro.autodiff import ops
        from repro.autodiff.tensor import as_tensor

        if self.batch_size is None:
            total = as_tensor(0.0)
            for term in self.log_prob_terms:
                term = as_tensor(term)
                total = ops.add(total, term.sum() if term.data.ndim > 0 else term)
            return total
        c = self.batch_size
        total = as_tensor(np.zeros(c))
        for term in self.log_prob_terms:
            term = as_tensor(term)
            if term.data.ndim >= 1 and term.data.shape[0] == c:
                reduced = ops.sum_(term, axis=tuple(range(1, term.data.ndim))) \
                    if term.data.ndim > 1 else term
            else:
                reduced = term.sum() if term.data.ndim > 0 else term
            total = ops.add(total, reduced)
        return total

    def __enter__(self):
        _FAST_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc_value, tb):
        assert _FAST_STACK[-1] is self
        _FAST_STACK.pop()
        return False


def current_batch_size():
    """Chain count of the innermost active batched fast context (or ``None``)."""
    if _FAST_STACK:
        return _FAST_STACK[-1].batch_size
    return None

# Global parameter store for `param` sites (Pyro's param store equivalent).
_PARAM_STORE: Dict[str, Tensor] = {}

# Fallback random generator when no `seed` handler is installed.
_DEFAULT_RNG = np.random.default_rng(0)

_SITE_COUNTER = [0]


def _fresh_name(prefix: str) -> str:
    _SITE_COUNTER[0] += 1
    return f"{prefix}__{_SITE_COUNTER[0]}"


def reset_site_counter() -> None:
    """Reset the automatic site-name counter (used between model runs)."""
    _SITE_COUNTER[0] = 0


def get_param_store() -> Dict[str, Tensor]:
    """Return the global parameter store."""
    return _PARAM_STORE


def clear_param_store() -> None:
    """Remove all learnable parameters (used between SVI experiments)."""
    _PARAM_STORE.clear()


def apply_stack(msg: Dict[str, Any]) -> Dict[str, Any]:
    """Send a message through the handler stack and apply the default."""
    stack = _HANDLER_STACK
    for pointer, handler in enumerate(reversed(stack)):
        handler.process_message(msg)
        if msg.get("stop"):
            break
    default_process(msg)
    for handler in stack:
        handler.postprocess_message(msg)
    return msg


def default_process(msg: Dict[str, Any]) -> None:
    """Default behaviour once no handler has produced a value."""
    if msg["type"] == "sample" and msg["value"] is None:
        rng = msg.get("rng") or _DEFAULT_RNG
        fn = msg["fn"]
        if getattr(fn, "has_rsample", False):
            # Reparameterised draw: keeps the graph to the distribution's
            # parameters so guide gradients (SVI) are pathwise.
            msg["value"] = fn.rsample(rng)
        else:
            msg["value"] = fn.sample(rng)
    elif msg["type"] == "param" and msg["value"] is None:
        store = _PARAM_STORE
        name = msg["name"]
        if name not in store:
            init = msg["init"]
            tensor = init if isinstance(init, Tensor) else Tensor(init)
            tensor.requires_grad = True
            tensor.name = name
            store[name] = tensor
        msg["value"] = store[name]


def sample(name: str, fn: Distribution, obs=None):
    """Sample a value from ``fn`` at site ``name`` (or observe ``obs``).

    Returns the (possibly handler-supplied) value.  With no handlers active
    this simply draws from the distribution — the model is runnable as an
    ordinary generative program.
    """
    if not isinstance(fn, Distribution):
        raise TypeError(f"sample site {name!r}: expected a Distribution, got {type(fn)!r}")
    if _FAST_STACK:
        ctx = _FAST_STACK[-1]
        if obs is not None:
            ctx.add(fn.log_prob(obs), name=name)
            return obs
        if name in ctx.substitution:
            value = ctx.substitution[name]
            ctx.add(fn.log_prob(value), name=name)
            return value
        return fn.sample(ctx.rng)
    msg = {
        "type": "sample",
        "name": name,
        "fn": fn,
        "value": obs,
        "is_observed": obs is not None,
        "rng": None,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]


def observe(fn: Distribution, value, name: Optional[str] = None):
    """Condition the execution on ``value`` following ``fn`` (paper §2.1).

    Equivalent to a ``sample`` with ``obs=value``; a fresh site name is
    generated when none is supplied, matching the compiler's name-postfixing
    behaviour in loops (§4).
    """
    if name is None:
        name = _fresh_name("observe")
    return sample(name, fn, obs=value)


def factor(name: str, log_factor):
    """Add ``log_factor`` to the log score of the current execution trace.

    Compiles Stan's ``target += e`` (§3.3, Fig. 7).
    """
    if _FAST_STACK:
        _FAST_STACK[-1].add(as_tensor(log_factor), name=name)
        return as_tensor(log_factor)
    msg = {
        "type": "factor",
        "name": name,
        "fn": None,
        "value": as_tensor(log_factor),
        "is_observed": True,
        "rng": None,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]


def param(name: str, init=None, constraint=None):
    """Declare or retrieve a learnable parameter (guide parameters, §5.1)."""
    msg = {
        "type": "param",
        "name": name,
        "init": init if init is not None else 0.0,
        "constraint": constraint,
        "value": None,
        "is_observed": False,
        "rng": None,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]


def deterministic(name: str, value):
    """Record a deterministic quantity in the trace (generated quantities)."""
    msg = {
        "type": "deterministic",
        "name": name,
        "fn": None,
        "value": value,
        "is_observed": True,
        "rng": None,
        "stop": False,
    }
    apply_stack(msg)
    return msg["value"]
