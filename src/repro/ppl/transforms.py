"""Bijective transforms between unconstrained space and constrained supports.

Stan runs HMC on unconstrained parameters and maps them to their declared
domains with smooth bijections, adding the log-absolute-determinant of the
Jacobian to the target density.  Pyro/NumPyro do the same through
``biject_to(support)``.  The inference engines in :mod:`repro.infer` use the
transforms defined here for exactly that purpose, so the compiled models (whose
parameters are sampled from ``uniform`` / ``improper_uniform`` priors on their
declared domains, §2.3) can be sampled with NUTS just like in the paper.

Every transform implements

* ``__call__(x)``      — unconstrained ``x`` to constrained ``y``,
* ``inv(y)``           — constrained ``y`` back to unconstrained ``x``,
* ``log_abs_det_jacobian(x, y)`` — ``log |dy/dx|`` summed over the event,
* ``batched_log_abs_det_jacobian(x, y)`` — the same quantity per *chain* for
  inputs carrying a leading batch axis (summed over every trailing axis).

All of them work on :class:`~repro.autodiff.tensor.Tensor` inputs so gradients
flow through the change of variables.  Transforms that act on a vector
(ordered, positive-ordered, stick-breaking) operate on the *last* axis, so a
``(num_chains, event)`` batch flows through them unchanged — this is what lets
the vectorized multi-chain engine push a whole matrix of unconstrained states
through the change of variables in one tape.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C


def _sum_trailing(x: Tensor) -> Tensor:
    """Sum a batched tensor over every axis except the leading (chain) axis."""
    x = as_tensor(x)
    if x.data.ndim <= 1:
        return x
    return ops.sum_(x, axis=tuple(range(1, x.data.ndim)))


class BatchingUnsupported(NotImplementedError):
    """Raised when a transform cannot produce per-chain Jacobian terms."""


class Transform:
    """Base class for bijections."""

    def __call__(self, x):
        raise NotImplementedError

    def inv(self, y):
        raise NotImplementedError

    def log_abs_det_jacobian(self, x, y):
        raise NotImplementedError

    def batched_log_abs_det_jacobian(self, x, y):
        """``log |dy/dx|`` per chain for ``x`` of shape ``(chains, *event)``."""
        raise BatchingUnsupported(type(self).__name__)

    def unconstrained_shape(self, constrained_shape):
        """Shape of the unconstrained representation (differs for simplex)."""
        return tuple(constrained_shape)


class IdentityTransform(Transform):
    def __call__(self, x):
        return as_tensor(x)

    def inv(self, y):
        return as_tensor(y)

    def log_abs_det_jacobian(self, x, y):
        return as_tensor(0.0)

    def batched_log_abs_det_jacobian(self, x, y):
        return as_tensor(0.0)

    def __repr__(self):
        return "identity"


class ExpTransform(Transform):
    """Maps R -> (0, inf) via exp."""

    def __call__(self, x):
        return ops.exp(x)

    def inv(self, y):
        return ops.log(as_tensor(y))

    def log_abs_det_jacobian(self, x, y):
        return ops.sum_(as_tensor(x))

    def batched_log_abs_det_jacobian(self, x, y):
        return _sum_trailing(x)

    def __repr__(self):
        return "exp"


class SoftplusTransform(Transform):
    """Maps R -> (0, inf) via ``softplus(x) = log(1 + exp(x))``.

    A flatter alternative to :class:`ExpTransform` for *variational* scale
    parameters: gradients do not explode for large ``x``, which keeps
    amortized guides (whose scales are network outputs) numerically stable.
    Not used by ``biject_to`` — Stan's constrained parameters keep the exp
    bijector for bit-compatibility with the sampler paths.
    """

    def __call__(self, x):
        return ops.softplus(x)

    def inv(self, y):
        # x = log(exp(y) - 1) = y + log(1 - exp(-y)), stable for large y.
        y = as_tensor(y)
        return ops.add(y, ops.log1p(ops.neg(ops.exp(ops.neg(y)))))

    def log_abs_det_jacobian(self, x, y):
        # d softplus(x)/dx = sigmoid(x);  log sigmoid(x) = -softplus(-x).
        return ops.neg(ops.sum_(ops.softplus(ops.neg(as_tensor(x)))))

    def batched_log_abs_det_jacobian(self, x, y):
        return ops.neg(_sum_trailing(ops.softplus(ops.neg(as_tensor(x)))))

    def __repr__(self):
        return "softplus"


class AffineTransform(Transform):
    """y = loc + scale * x."""

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def __call__(self, x):
        return ops.add(self.loc, ops.mul(self.scale, x))

    def inv(self, y):
        return ops.div(ops.sub(y, self.loc), self.scale)

    def log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        n = x.data.size
        scale = float(np.asarray(self.scale if not isinstance(self.scale, Tensor) else self.scale.data))
        return as_tensor(n * math.log(abs(scale)))

    def batched_log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        n = int(np.prod(x.data.shape[1:])) if x.data.ndim > 1 else 1
        scale = float(np.asarray(self.scale if not isinstance(self.scale, Tensor) else self.scale.data))
        return as_tensor(n * math.log(abs(scale)))

    def __repr__(self):
        return f"affine(loc={self.loc}, scale={self.scale})"


class ComposeTransform(Transform):
    """Apply ``parts`` left to right."""

    def __init__(self, parts):
        self.parts = list(parts)

    def __call__(self, x):
        for part in self.parts:
            x = part(x)
        return x

    def inv(self, y):
        for part in reversed(self.parts):
            y = part.inv(y)
        return y

    def log_abs_det_jacobian(self, x, y):
        total = as_tensor(0.0)
        cur = as_tensor(x)
        for part in self.parts:
            nxt = part(cur)
            total = ops.add(total, part.log_abs_det_jacobian(cur, nxt))
            cur = nxt
        return total

    def batched_log_abs_det_jacobian(self, x, y):
        total = as_tensor(0.0)
        cur = as_tensor(x)
        for part in self.parts:
            nxt = part(cur)
            total = ops.add(total, part.batched_log_abs_det_jacobian(cur, nxt))
            cur = nxt
        return total

    def __repr__(self):
        return "compose(" + ", ".join(repr(p) for p in self.parts) + ")"


class LowerBoundTransform(Transform):
    """Maps R -> (lower, inf): y = lower + exp(x)."""

    def __init__(self, lower):
        self.lower = lower

    def __call__(self, x):
        return ops.add(self.lower, ops.exp(x))

    def inv(self, y):
        return ops.log(ops.sub(y, self.lower))

    def log_abs_det_jacobian(self, x, y):
        return ops.sum_(as_tensor(x))

    def batched_log_abs_det_jacobian(self, x, y):
        return _sum_trailing(x)

    def __repr__(self):
        return f"lower({self.lower})"


class UpperBoundTransform(Transform):
    """Maps R -> (-inf, upper): y = upper - exp(x)."""

    def __init__(self, upper):
        self.upper = upper

    def __call__(self, x):
        return ops.sub(self.upper, ops.exp(x))

    def inv(self, y):
        return ops.log(ops.sub(self.upper, y))

    def log_abs_det_jacobian(self, x, y):
        return ops.sum_(as_tensor(x))

    def batched_log_abs_det_jacobian(self, x, y):
        return _sum_trailing(x)

    def __repr__(self):
        return f"upper({self.upper})"


class IntervalTransform(Transform):
    """Maps R -> (lower, upper) via a scaled logistic sigmoid."""

    def __init__(self, lower, upper):
        self.lower = lower
        self.upper = upper

    def __call__(self, x):
        width = ops.sub(self.upper, self.lower)
        return ops.add(self.lower, ops.mul(width, ops.sigmoid(x)))

    def inv(self, y):
        width = ops.sub(self.upper, self.lower)
        p = ops.div(ops.sub(y, self.lower), width)
        p = ops.clip(p, 1e-12, 1.0 - 1e-12)
        return ops.sub(ops.log(p), ops.log1p(ops.neg(p)))

    def log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        width = ops.sub(self.upper, self.lower)
        width_term = ops.log(width)
        if isinstance(width_term, Tensor) and width_term.data.size == 1 and x.data.size > 1:
            width_term = ops.mul(float(x.data.size), width_term)
        else:
            width_term = ops.sum_(ops.mul(ops.add(ops.mul(x, 0.0), 1.0), ops.log(width)))
        s = ops.sigmoid(x)
        sig_term = ops.sum_(ops.add(ops.log(s), ops.log1p(ops.neg(s))))
        return ops.add(width_term, sig_term)

    def batched_log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        width = ops.sub(self.upper, self.lower)
        n = int(np.prod(x.data.shape[1:])) if x.data.ndim > 1 else 1
        if isinstance(width, Tensor) and width.data.size == 1:
            width_term = ops.mul(float(n), ops.log(width))
        else:
            width_term = _sum_trailing(ops.mul(ops.add(ops.mul(x, 0.0), 1.0), ops.log(width)))
        s = ops.sigmoid(x)
        sig_term = _sum_trailing(ops.add(ops.log(s), ops.log1p(ops.neg(s))))
        return ops.add(width_term, sig_term)

    def __repr__(self):
        return f"interval({self.lower}, {self.upper})"


class OrderedTransform(Transform):
    """Maps R^n to ordered vectors: y1 = x1, y_k = y_{k-1} + exp(x_k).

    Operates on the *last* axis so batched ``(chains, n)`` inputs pass through.
    """

    def __call__(self, x):
        x = as_tensor(x)
        first = x[(Ellipsis, slice(0, 1))]
        if x.shape[-1] <= 1:
            return first
        rest = ops.cumsum(ops.exp(x[(Ellipsis, slice(1, None))]), axis=-1)
        return ops.concatenate([first, ops.add(first, rest)], axis=-1)

    def inv(self, y):
        y = as_tensor(y)
        first = y[(Ellipsis, slice(0, 1))]
        if y.shape[-1] <= 1:
            return first
        diffs = ops.sub(y[(Ellipsis, slice(1, None))], y[(Ellipsis, slice(0, -1))])
        return ops.concatenate([first, ops.log(diffs)], axis=-1)

    def log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        if x.shape[-1] <= 1:
            return as_tensor(0.0)
        return ops.sum_(x[(Ellipsis, slice(1, None))])

    def batched_log_abs_det_jacobian(self, x, y):
        x = as_tensor(x)
        if x.shape[-1] <= 1:
            return as_tensor(0.0)
        return _sum_trailing(x[(Ellipsis, slice(1, None))])

    def __repr__(self):
        return "ordered"


class PositiveOrderedTransform(Transform):
    """Maps R^n to positive ordered vectors via cumulative sums of exp."""

    def __call__(self, x):
        x = as_tensor(x)
        return ops.cumsum(ops.exp(x), axis=-1)

    def inv(self, y):
        y = as_tensor(y)
        first = ops.log(y[(Ellipsis, slice(0, 1))])
        if y.shape[-1] <= 1:
            return first
        diffs = ops.sub(y[(Ellipsis, slice(1, None))], y[(Ellipsis, slice(0, -1))])
        return ops.concatenate([first, ops.log(diffs)], axis=-1)

    def log_abs_det_jacobian(self, x, y):
        return ops.sum_(as_tensor(x))

    def batched_log_abs_det_jacobian(self, x, y):
        return _sum_trailing(x)

    def __repr__(self):
        return "positive_ordered"


class StickBreakingTransform(Transform):
    """Maps R^{n-1} to the n-simplex using Stan's stick-breaking construction.

    The stick is broken along the *last* axis; leading axes (chains) batch.
    """

    def __call__(self, x):
        x = as_tensor(x)
        n = x.shape[-1] + 1
        remaining = as_tensor(1.0)
        parts = []
        for k in range(n - 1):
            offset = math.log(1.0 / (n - k - 1))
            z = ops.sigmoid(ops.add(x[(Ellipsis, slice(k, k + 1))], offset))
            piece = ops.mul(remaining, z)
            parts.append(piece)
            remaining = ops.sub(remaining, piece)
        if not parts:
            # Zero-length unconstrained input: the 1-simplex is the point {1}.
            return ops.reshape(as_tensor(np.ones(x.data.shape[:-1] + (1,))), x.data.shape[:-1] + (1,))
        parts.append(remaining)
        return ops.concatenate(parts, axis=-1)

    def inv(self, y):
        y = as_tensor(y)
        n = y.shape[-1]
        parts = []
        remaining = as_tensor(1.0)
        for k in range(n - 1):
            yk = y[(Ellipsis, slice(k, k + 1))]
            z = ops.div(yk, remaining)
            z = ops.clip(z, 1e-12, 1 - 1e-12)
            offset = math.log(1.0 / (n - k - 1))
            parts.append(ops.sub(ops.sub(ops.log(z), ops.log1p(ops.neg(z))), offset))
            remaining = ops.sub(remaining, yk)
        return ops.concatenate(parts, axis=-1)

    def log_abs_det_jacobian(self, x, y):
        return self._log_det_terms(x)

    def batched_log_abs_det_jacobian(self, x, y):
        return _sum_trailing(self._log_det_terms(x, keep_batch=True))

    def _log_det_terms(self, x, keep_batch: bool = False):
        x = as_tensor(x)
        n = x.shape[-1] + 1
        total = as_tensor(0.0)
        remaining = as_tensor(1.0)
        for k in range(n - 1):
            offset = math.log(1.0 / (n - k - 1))
            z = ops.sigmoid(ops.add(x[(Ellipsis, slice(k, k + 1))], offset))
            total = ops.add(
                total,
                ops.add(ops.log(remaining), ops.add(ops.log(z), ops.log1p(ops.neg(z)))),
            )
            remaining = ops.mul(remaining, ops.sub(1.0, z))
        if keep_batch:
            return total
        return ops.sum_(total) if isinstance(total, Tensor) and total.data.ndim > 0 else total

    def unconstrained_shape(self, constrained_shape):
        shape = tuple(constrained_shape)
        if not shape:
            raise ValueError("simplex must have at least one dimension")
        return shape[:-1] + (shape[-1] - 1,)

    def __repr__(self):
        return "stick_breaking"


def biject_to(constraint: C.Constraint) -> Transform:
    """Return the transform mapping unconstrained reals onto ``constraint``."""
    if isinstance(constraint, C.Real):
        return IdentityTransform()
    if isinstance(constraint, C.IntegerInterval):
        # Discrete supports are not reparameterised; identity keeps values.
        return IdentityTransform()
    if isinstance(constraint, C.Interval):
        lo, hi = constraint.lower, constraint.upper
        if math.isinf(lo) and math.isinf(hi):
            return IdentityTransform()
        if math.isinf(hi):
            return LowerBoundTransform(lo) if lo != 0.0 else ExpTransform()
        if math.isinf(lo):
            return UpperBoundTransform(hi)
        return IntervalTransform(lo, hi)
    if isinstance(constraint, C.Simplex):
        return StickBreakingTransform()
    if isinstance(constraint, C.Ordered):
        return OrderedTransform()
    if isinstance(constraint, C.PositiveOrdered):
        return PositiveOrderedTransform()
    raise NotImplementedError(f"no bijector for constraint {constraint!r}")
