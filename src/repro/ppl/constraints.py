"""Support constraints for distributions and Stan parameter declarations.

A :class:`Constraint` describes the support of a distribution (or the declared
domain of a Stan parameter).  It is used in three places:

* the mixed compilation scheme (§4) merges ``sample(uniform)`` with a
  subsequent ``observe(D, x)`` only when the supports coincide;
* the inference engines pick the bijector mapping unconstrained space onto the
  support (:func:`repro.ppl.transforms.biject_to`);
* distribution ``log_prob`` implementations use constraints to clamp or reject
  out-of-support values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

Numeric = Union[int, float, np.ndarray]


def _as_float(x) -> float:
    if x is None:
        return math.nan
    if hasattr(x, "item"):
        try:
            return float(x.item())
        except Exception:  # pragma: no cover - defensive
            return math.nan
    try:
        return float(x)
    except (TypeError, ValueError):
        return math.nan


@dataclass(frozen=True)
class Constraint:
    """Base class; concrete constraints are singletons or parameterised."""

    def check(self, value) -> bool:
        raise NotImplementedError

    @property
    def is_discrete(self) -> bool:
        return False


@dataclass(frozen=True)
class Real(Constraint):
    def check(self, value) -> bool:
        return bool(np.all(np.isfinite(np.asarray(value, dtype=float))))

    def __repr__(self) -> str:
        return "real"


@dataclass(frozen=True)
class Interval(Constraint):
    """Support ``[lower, upper]``; either bound may be infinite."""

    lower: float = -math.inf
    upper: float = math.inf

    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        return bool(np.all(arr >= self.lower) and np.all(arr <= self.upper))

    def __repr__(self) -> str:
        return f"interval({self.lower}, {self.upper})"


@dataclass(frozen=True)
class IntegerInterval(Constraint):
    lower: float = -math.inf
    upper: float = math.inf

    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        return bool(
            np.all(arr >= self.lower)
            and np.all(arr <= self.upper)
            and np.all(arr == np.round(arr))
        )

    @property
    def is_discrete(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"integer_interval({self.lower}, {self.upper})"


@dataclass(frozen=True)
class Simplex(Constraint):
    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        return bool(np.all(arr >= 0) and abs(arr.sum() - 1.0) < 1e-6)

    def __repr__(self) -> str:
        return "simplex"


@dataclass(frozen=True)
class Ordered(Constraint):
    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        return bool(np.all(np.diff(arr) >= 0))

    def __repr__(self) -> str:
        return "ordered"


@dataclass(frozen=True)
class PositiveOrdered(Constraint):
    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        return bool(np.all(arr >= 0) and np.all(np.diff(arr) >= 0))

    def __repr__(self) -> str:
        return "positive_ordered"


@dataclass(frozen=True)
class CholeskyCorr(Constraint):
    def check(self, value) -> bool:
        arr = np.asarray(value, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            return False
        return bool(np.allclose(arr, np.tril(arr)))

    def __repr__(self) -> str:
        return "cholesky_factor_corr"


# Canonical instances -------------------------------------------------------
real = Real()
positive = Interval(0.0, math.inf)
negative = Interval(-math.inf, 0.0)
unit_interval = Interval(0.0, 1.0)
simplex = Simplex()
ordered = Ordered()
positive_ordered = PositiveOrdered()
integer = IntegerInterval()
nonnegative_integer = IntegerInterval(0, math.inf)
cholesky_corr = CholeskyCorr()


def interval(lower=None, upper=None) -> Interval:
    """Build an :class:`Interval` from optional bounds (Stan ``<lower,upper>``)."""
    lo = -math.inf if lower is None else _as_float(lower)
    hi = math.inf if upper is None else _as_float(upper)
    return Interval(lo, hi)


def integer_interval(lower=None, upper=None) -> IntegerInterval:
    lo = -math.inf if lower is None else _as_float(lower)
    hi = math.inf if upper is None else _as_float(upper)
    return IntegerInterval(lo, hi)


def same_support(a: Constraint, b: Constraint, atol: float = 1e-12) -> bool:
    """Whether two constraints describe the same support.

    Used by the mixed compilation scheme: ``sample(uniform(support))`` followed
    by ``observe(D, x)`` may be merged into ``sample(D)`` only when
    ``D.support`` equals the declared support of ``x`` (§4).
    """
    if type(a) is not type(b):
        # A Real constraint and an unbounded Interval are the same support.
        a_iv = Interval(-math.inf, math.inf) if isinstance(a, Real) else a
        b_iv = Interval(-math.inf, math.inf) if isinstance(b, Real) else b
        if isinstance(a_iv, Interval) and isinstance(b_iv, Interval):
            return _interval_eq(a_iv, b_iv, atol)
        return False
    if isinstance(a, Interval):
        return _interval_eq(a, b, atol)
    if isinstance(a, IntegerInterval):
        return _interval_eq(a, b, atol)
    return True


def _interval_eq(a, b, atol: float) -> bool:
    def eq(x, y):
        if math.isinf(x) or math.isinf(y):
            return x == y
        return abs(x - y) <= atol

    return eq(a.lower, b.lower) and eq(a.upper, b.upper)
