"""Algebraic effect handlers over the probabilistic primitives.

The handler set mirrors the Pyro "poutine" layer used by the paper's
generated code and inference algorithms:

* :class:`trace` — record every site (name, distribution, value, log-prob).
* :class:`replay` — reuse the sampled values of a previous trace.
* :class:`substitute` — force given values at named sample sites.
* :class:`condition` — like substitute but marks the sites as observed.
* :class:`seed` — supply a deterministic NumPy generator to sample sites.
* :class:`block` — hide selected sites from outer handlers.

Together with :func:`log_density` these are sufficient to build the NUTS
potential function and the SVI ELBO estimator.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import primitives
from repro.ppl.primitives import _HANDLER_STACK


class Messenger:
    """Base effect handler; also usable as a decorator around a model fn."""

    def __init__(self, fn: Optional[Callable] = None):
        self.fn = fn

    def __enter__(self):
        _HANDLER_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc_value, tb):
        assert _HANDLER_STACK[-1] is self
        _HANDLER_STACK.pop()
        return False

    def __call__(self, *args, **kwargs):
        if self.fn is None:
            raise ValueError("this handler does not wrap a function")
        with self:
            return self.fn(*args, **kwargs)

    def process_message(self, msg: Dict[str, Any]) -> None:
        """Hook run on the way *down* the stack (innermost first)."""

    def postprocess_message(self, msg: Dict[str, Any]) -> None:
        """Hook run on the way *up* the stack (outermost last)."""


class trace(Messenger):
    """Record all sites of an execution in an ordered dictionary."""

    def __init__(self, fn: Optional[Callable] = None):
        super().__init__(fn)
        self.trace: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def __enter__(self):
        self.trace = OrderedDict()
        return super().__enter__()

    def postprocess_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] in ("sample", "factor", "param", "deterministic"):
            name = msg["name"]
            if name in self.trace:
                raise RuntimeError(f"duplicate site name {name!r} in trace")
            self.trace[name] = dict(msg)

    def get_trace(self, *args, **kwargs) -> "OrderedDict[str, Dict[str, Any]]":
        """Run the wrapped function and return the recorded trace."""
        self(*args, **kwargs)
        return self.trace


class replay(Messenger):
    """Replay sample sites from a previously recorded trace."""

    def __init__(self, fn: Optional[Callable] = None, guide_trace: Optional[Dict] = None):
        super().__init__(fn)
        self.guide_trace = guide_trace or {}

    def process_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] == "sample" and not msg["is_observed"]:
            site = self.guide_trace.get(msg["name"])
            if site is not None:
                msg["value"] = site["value"]


class substitute(Messenger):
    """Force the values of named sample sites (used to build potential fns)."""

    def __init__(self, fn: Optional[Callable] = None, data: Optional[Dict[str, Any]] = None):
        super().__init__(fn)
        self.data = data or {}

    def process_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] in ("sample", "param") and msg["name"] in self.data:
            msg["value"] = self.data[msg["name"]]


class condition(Messenger):
    """Condition named sample sites on observed values."""

    def __init__(self, fn: Optional[Callable] = None, data: Optional[Dict[str, Any]] = None):
        super().__init__(fn)
        self.data = data or {}

    def process_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] == "sample" and msg["name"] in self.data:
            msg["value"] = self.data[msg["name"]]
            msg["is_observed"] = True


class seed(Messenger):
    """Supply a deterministic random generator to all sample sites."""

    def __init__(self, fn: Optional[Callable] = None, rng_seed: int = 0):
        super().__init__(fn)
        if isinstance(rng_seed, np.random.Generator):
            self.rng = rng_seed
        else:
            self.rng = np.random.default_rng(rng_seed)

    def process_message(self, msg: Dict[str, Any]) -> None:
        if msg["type"] == "sample" and msg.get("rng") is None:
            msg["rng"] = self.rng


class block(Messenger):
    """Hide sites matching ``hide_fn`` from handlers further out."""

    def __init__(self, fn: Optional[Callable] = None, hide_fn: Optional[Callable[[Dict], bool]] = None,
                 hide: Optional[Iterable[str]] = None):
        super().__init__(fn)
        if hide_fn is not None:
            self.hide_fn = hide_fn
        elif hide is not None:
            names = set(hide)
            self.hide_fn = lambda msg: msg["name"] in names
        else:
            self.hide_fn = lambda msg: True

    def process_message(self, msg: Dict[str, Any]) -> None:
        if self.hide_fn(msg):
            msg["stop"] = True


# ----------------------------------------------------------------------
# derived utilities
# ----------------------------------------------------------------------
def trace_log_density(model_trace: Dict[str, Dict[str, Any]]) -> Tensor:
    """Sum the log-probability of every sample site and factor in a trace."""
    total = as_tensor(0.0)
    for site in model_trace.values():
        if site["type"] == "sample":
            lp = site["fn"].log_prob(site["value"])
            total = ops.add(total, lp.sum() if isinstance(lp, Tensor) and lp.data.ndim > 0 else lp)
        elif site["type"] == "factor":
            value = site["value"]
            value = value.sum() if isinstance(value, Tensor) and value.data.ndim > 0 else as_tensor(value)
            total = ops.add(total, value)
    return total


def log_density(model: Callable, model_args=(), model_kwargs=None,
                substituted: Optional[Dict[str, Any]] = None,
                rng_seed: int = 0):
    """Run ``model`` with ``substituted`` latent values; return (log joint, trace).

    This is the core building block of the inference engines: the joint log
    density of the observed data and the substituted latent values, as a
    differentiable :class:`Tensor`.
    """
    model_kwargs = model_kwargs or {}
    tracer = trace()
    with seed(rng_seed=rng_seed), substitute(data=substituted or {}), tracer:
        model(*model_args, **model_kwargs)
    return trace_log_density(tracer.trace), tracer.trace


def latent_sites(model_trace: Dict[str, Dict[str, Any]]) -> "OrderedDict[str, Dict[str, Any]]":
    """Return the unobserved sample sites of a trace (the model parameters)."""
    out: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    for name, site in model_trace.items():
        if site["type"] == "sample" and not site["is_observed"]:
            out[name] = site
    return out
