"""Lifting neural networks to Bayesian neural networks (``random_module``).

Pyro's ``random_module`` primitive takes a neural network and a dictionary of
priors and returns a *distribution over networks*: calling it samples every
named parameter from its prior (through ordinary ``sample`` sites, so all the
handlers apply) and installs the sampled tensors into a copy of the network.
The paper's compilation of Bayesian neural networks (§5.3) relies on exactly
this primitive, combined with the comprehensive translation of the priors
declared in the Stan ``parameters`` block.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict

from repro.autodiff.nn import Module
from repro.ppl.distributions.base import Distribution
from repro.ppl.primitives import sample


def random_module(name: str, module: Module, priors: Dict[str, Distribution]) -> Callable[[], Module]:
    """Return a callable that samples a lifted copy of ``module``.

    ``priors`` maps dotted parameter paths (e.g. ``"l1.weight"``) to
    distributions.  Parameters without an entry keep their deterministic
    values, which is how the compiler supports mixing probabilistic and
    non-probabilistic parameters (§5.3).
    """

    def lifted() -> Module:
        lifted_module = copy.deepcopy(module)
        for param_name, prior in priors.items():
            site_name = f"{name}.{param_name}"
            value = sample(site_name, prior)
            lifted_module.set_parameter(param_name, value)
        return lifted_module

    return lifted
