"""Univariate continuous distributions.

The set covers the Stan functions reference entries used by the bundled
corpus and PosteriorDB-style models: location-scale families, positive
families, and bounded families.  ``log_prob`` is written with
:mod:`repro.autodiff.ops` so that gradients with respect to both the value and
the distribution parameters are available to HMC/NUTS and to variational
inference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C
from repro.ppl.distributions.base import Distribution, param_value

LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


class Normal(Distribution):
    """Gaussian distribution ``normal(mu, sigma)``."""

    support = C.real
    has_rsample = True

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return param_value(self.loc) + param_value(self.scale) * rng.standard_normal(shape)

    def rsample(self, rng, sample_shape=()) -> Tensor:
        """Reparameterised sample (pathwise gradients for SVI guides)."""
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        eps = rng.standard_normal(shape)
        return ops.add(self.loc, ops.mul(self.scale, eps))

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(ops.sub(value, self.loc), self.scale)
        return ops.sub(
            ops.mul(-0.5, ops.mul(z, z)),
            ops.add(ops.log(as_tensor(self.scale)), LOG_SQRT_2PI),
        )

    @property
    def mean(self):
        return param_value(self.loc)

    @property
    def variance(self):
        return param_value(self.scale) ** 2


class StudentT(Distribution):
    """Student's t ``student_t(nu, mu, sigma)``."""

    support = C.real

    def __init__(self, df, loc=0.0, scale=1.0):
        self.df = df
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.df, self.loc, self.scale)
        return param_value(self.loc) + param_value(self.scale) * rng.standard_t(
            param_value(self.df), size=shape
        )

    def log_prob(self, value):
        value = as_tensor(value)
        nu = as_tensor(self.df)
        z = ops.div(ops.sub(value, self.loc), self.scale)
        half_nu = ops.mul(0.5, nu)
        lognorm = ops.sub(
            ops.lgamma(ops.add(half_nu, 0.5)),
            ops.add(
                ops.lgamma(half_nu),
                ops.add(
                    ops.mul(0.5, ops.log(nu)),
                    ops.add(0.5 * math.log(math.pi), ops.log(as_tensor(self.scale))),
                ),
            ),
        )
        kernel = ops.mul(
            ops.neg(ops.add(half_nu, 0.5)),
            ops.log1p(ops.div(ops.mul(z, z), nu)),
        )
        return ops.add(lognorm, kernel)


class Cauchy(Distribution):
    """Cauchy ``cauchy(mu, sigma)``."""

    support = C.real

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return param_value(self.loc) + param_value(self.scale) * rng.standard_cauchy(shape)

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(ops.sub(value, self.loc), self.scale)
        return ops.neg(
            ops.add(
                math.log(math.pi),
                ops.add(ops.log(as_tensor(self.scale)), ops.log1p(ops.mul(z, z))),
            )
        )


class DoubleExponential(Distribution):
    """Laplace ``double_exponential(mu, sigma)``."""

    support = C.real

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return rng.laplace(param_value(self.loc), param_value(self.scale), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.abs_(ops.div(ops.sub(value, self.loc), self.scale))
        return ops.neg(ops.add(z, ops.add(math.log(2.0), ops.log(as_tensor(self.scale)))))


class Logistic(Distribution):
    """Logistic ``logistic(mu, sigma)``."""

    support = C.real

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return rng.logistic(param_value(self.loc), param_value(self.scale), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(ops.sub(value, self.loc), self.scale)
        return ops.sub(
            ops.sub(ops.neg(z), ops.log(as_tensor(self.scale))),
            ops.mul(2.0, ops.softplus(ops.neg(z))),
        )


class LogNormal(Distribution):
    """``lognormal(mu, sigma)`` on (0, inf)."""

    support = C.positive

    def __init__(self, loc=0.0, scale=1.0):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return rng.lognormal(param_value(self.loc), param_value(self.scale), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        logv = ops.log(value)
        z = ops.div(ops.sub(logv, self.loc), self.scale)
        return ops.sub(
            ops.mul(-0.5, ops.mul(z, z)),
            ops.add(logv, ops.add(ops.log(as_tensor(self.scale)), LOG_SQRT_2PI)),
        )


class Exponential(Distribution):
    """``exponential(beta)`` with rate ``beta``."""

    support = C.positive

    def __init__(self, rate=1.0):
        self.rate = rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.rate)
        return rng.exponential(1.0 / param_value(self.rate), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        return ops.sub(ops.log(as_tensor(self.rate)), ops.mul(self.rate, value))

    @property
    def mean(self):
        return 1.0 / param_value(self.rate)


class Gamma(Distribution):
    """``gamma(alpha, beta)`` with shape ``alpha`` and rate ``beta``."""

    support = C.positive

    def __init__(self, concentration, rate):
        self.concentration = concentration
        self.rate = rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.concentration, self.rate)
        return rng.gamma(param_value(self.concentration), 1.0 / param_value(self.rate), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        a = as_tensor(self.concentration)
        b = as_tensor(self.rate)
        return ops.sub(
            ops.add(
                ops.mul(a, ops.log(b)),
                ops.mul(ops.sub(a, 1.0), ops.log(value)),
            ),
            ops.add(ops.mul(b, value), ops.lgamma(a)),
        )


class InvGamma(Distribution):
    """``inv_gamma(alpha, beta)``."""

    support = C.positive

    def __init__(self, concentration, scale):
        self.concentration = concentration
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.concentration, self.scale)
        return 1.0 / rng.gamma(
            param_value(self.concentration), 1.0 / param_value(self.scale), size=shape
        )

    def log_prob(self, value):
        value = as_tensor(value)
        a = as_tensor(self.concentration)
        b = as_tensor(self.scale)
        return ops.sub(
            ops.sub(ops.mul(a, ops.log(b)), ops.mul(ops.add(a, 1.0), ops.log(value))),
            ops.add(ops.div(b, value), ops.lgamma(a)),
        )


class ChiSquare(Distribution):
    """``chi_square(nu)``."""

    support = C.positive

    def __init__(self, df):
        self.df = df

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.df)
        return rng.chisquare(param_value(self.df), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        half_nu = ops.mul(0.5, as_tensor(self.df))
        return ops.sub(
            ops.add(
                ops.mul(ops.sub(half_nu, 1.0), ops.log(value)),
                ops.mul(-0.5, value),
            ),
            ops.add(ops.mul(half_nu, math.log(2.0)), ops.lgamma(half_nu)),
        )


class InvChiSquare(Distribution):
    """``inv_chi_square(nu)``."""

    support = C.positive

    def __init__(self, df):
        self.df = df

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.df)
        return 1.0 / rng.chisquare(param_value(self.df), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        half_nu = ops.mul(0.5, as_tensor(self.df))
        return ops.sub(
            ops.sub(
                ops.mul(ops.neg(ops.add(half_nu, 1.0)), ops.log(value)),
                ops.div(0.5, value),
            ),
            ops.add(ops.mul(half_nu, math.log(2.0)), ops.lgamma(half_nu)),
        )


class Weibull(Distribution):
    """``weibull(alpha, sigma)``."""

    support = C.positive

    def __init__(self, shape, scale):
        self.shape_param = shape
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        out_shape = self.expand_shape(sample_shape, self.shape_param, self.scale)
        return param_value(self.scale) * rng.weibull(param_value(self.shape_param), size=out_shape)

    def log_prob(self, value):
        value = as_tensor(value)
        k = as_tensor(self.shape_param)
        lam = as_tensor(self.scale)
        z = ops.div(value, lam)
        return ops.sub(
            ops.add(
                ops.sub(ops.log(k), ops.log(lam)),
                ops.mul(ops.sub(k, 1.0), ops.log(z)),
            ),
            ops.pow_(z, k),
        )


class Beta(Distribution):
    """``beta(alpha, beta)`` on (0, 1)."""

    support = C.unit_interval

    def __init__(self, concentration1, concentration0):
        self.concentration1 = concentration1
        self.concentration0 = concentration0

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.concentration1, self.concentration0)
        return rng.beta(
            param_value(self.concentration1), param_value(self.concentration0), size=shape
        )

    def log_prob(self, value):
        value = as_tensor(value)
        a = as_tensor(self.concentration1)
        b = as_tensor(self.concentration0)
        log_beta = ops.sub(ops.add(ops.lgamma(a), ops.lgamma(b)), ops.lgamma(ops.add(a, b)))
        return ops.sub(
            ops.add(
                ops.mul(ops.sub(a, 1.0), ops.log(value)),
                ops.mul(ops.sub(b, 1.0), ops.log1p(ops.neg(value))),
            ),
            log_beta,
        )


class Uniform(Distribution):
    """``uniform(a, b)``; the support is the declared interval."""

    def __init__(self, low=0.0, high=1.0):
        self.low = low
        self.high = high
        self.support = C.interval(param_value(low).item() if np.size(param_value(low)) == 1 else None,
                                  param_value(high).item() if np.size(param_value(high)) == 1 else None)

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.low, self.high)
        return rng.uniform(param_value(self.low), param_value(self.high), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        width = ops.sub(self.high, self.low)
        return ops.sub(ops.mul(value, 0.0), ops.log(width))


class Pareto(Distribution):
    """``pareto(y_min, alpha)``."""

    def __init__(self, scale, alpha):
        self.scale = scale
        self.alpha = alpha
        lo = param_value(scale)
        self.support = C.interval(float(lo) if lo.size == 1 else 0.0, None)

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.scale, self.alpha)
        return param_value(self.scale) * (1.0 + rng.pareto(param_value(self.alpha), size=shape))

    def log_prob(self, value):
        value = as_tensor(value)
        a = as_tensor(self.alpha)
        m = as_tensor(self.scale)
        return ops.sub(
            ops.add(ops.log(a), ops.mul(a, ops.log(m))),
            ops.mul(ops.add(a, 1.0), ops.log(value)),
        )


class Gumbel(Distribution):
    """``gumbel(mu, beta)``."""

    support = C.real

    def __init__(self, loc, scale):
        self.loc = loc
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.loc, self.scale)
        return rng.gumbel(param_value(self.loc), param_value(self.scale), size=shape)

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(ops.sub(value, self.loc), self.scale)
        return ops.sub(
            ops.sub(ops.neg(z), ops.exp(ops.neg(z))),
            ops.log(as_tensor(self.scale)),
        )


class HalfNormal(Distribution):
    """Half-normal on (0, inf); used for truncated ``normal`` priors."""

    support = C.positive

    def __init__(self, scale=1.0):
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.scale)
        return np.abs(param_value(self.scale) * rng.standard_normal(shape))

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(value, self.scale)
        return ops.add(
            ops.sub(
                ops.mul(-0.5, ops.mul(z, z)),
                ops.add(ops.log(as_tensor(self.scale)), LOG_SQRT_2PI),
            ),
            math.log(2.0),
        )


class HalfCauchy(Distribution):
    """Half-Cauchy on (0, inf)."""

    support = C.positive

    def __init__(self, scale=1.0):
        self.scale = scale

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.scale)
        return np.abs(param_value(self.scale) * rng.standard_cauchy(shape))

    def log_prob(self, value):
        value = as_tensor(value)
        z = ops.div(value, self.scale)
        return ops.add(
            ops.neg(
                ops.add(
                    math.log(math.pi),
                    ops.add(ops.log(as_tensor(self.scale)), ops.log1p(ops.mul(z, z))),
                )
            ),
            math.log(2.0),
        )
