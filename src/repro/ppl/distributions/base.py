"""Distribution base class shared by all runtime distributions.

Distributions hold their parameters as tensors (or plain arrays), expose a
``support`` constraint, a ``sample`` method driven by a NumPy ``Generator``
and a differentiable ``log_prob``.  ``log_prob`` returns an *element-wise*
tensor; the effect handlers (and the inference engines) sum it over the whole
site, which mirrors how the compiled Stan code treats vectorised ``~``
statements.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C

ParamLike = Union[int, float, np.ndarray, Tensor]


def param_value(x: ParamLike) -> np.ndarray:
    """Return the plain NumPy value of a (possibly Tensor) parameter."""
    if isinstance(x, Tensor):
        return x.data
    return np.asarray(x, dtype=float)


class Distribution:
    """Base class for probability distributions."""

    #: declared support; concrete classes override (possibly per-instance)
    support: C.Constraint = C.real

    #: whether the distribution is discrete (affects inference site handling)
    is_discrete: bool = False

    #: length of a single event (0 for scalar distributions)
    event_dim: int = 0

    def sample(self, rng: np.random.Generator, sample_shape: Tuple[int, ...] = ()) -> np.ndarray:
        """Draw a sample as a NumPy array (no gradient tracking)."""
        raise NotImplementedError

    def log_prob(self, value) -> Tensor:
        """Element-wise log density/mass at ``value`` (a Tensor)."""
        raise NotImplementedError

    def enumerate_support(self) -> np.ndarray:
        """The finite per-element support as a 1-d array of values.

        Only meaningful for discrete distributions whose support is bounded
        (Bernoulli, Categorical, bounded Binomial, ...); the enumeration
        engine (:mod:`repro.enum`) uses it to marginalize discrete latent
        sites exactly.  Distributions with unbounded or continuous support
        raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no finite enumerable support")

    # ------------------------------------------------------------------
    # helpers shared by concrete distributions
    # ------------------------------------------------------------------
    def _batch_shape(self, *params) -> Tuple[int, ...]:
        shapes = [np.shape(param_value(p)) for p in params]
        return np.broadcast_shapes(*shapes) if shapes else ()

    def expand_shape(self, sample_shape: Tuple[int, ...], *params) -> Tuple[int, ...]:
        return tuple(sample_shape) + self._batch_shape(*params)

    @property
    def mean(self) -> np.ndarray:  # pragma: no cover - optional
        raise NotImplementedError

    @property
    def variance(self) -> np.ndarray:  # pragma: no cover - optional
        raise NotImplementedError

    def log_prob_sum(self, value) -> Tensor:
        """Sum of the element-wise log probability (a scalar tensor)."""
        lp = self.log_prob(value)
        if isinstance(lp, Tensor) and lp.data.ndim > 0:
            return lp.sum()
        return as_tensor(lp)

    def __repr__(self) -> str:
        return type(self).__name__
