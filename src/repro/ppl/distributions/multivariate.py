"""Multivariate distributions (Dirichlet, multivariate normal).

Only the members needed by the bundled corpus are implemented; each has an
``event_dim`` of 1 (or 2 for matrix variates) so the handlers know not to
treat trailing dimensions as independent sites.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C
from repro.ppl.distributions.base import Distribution, param_value


class Dirichlet(Distribution):
    """``dirichlet(alpha)`` over the simplex."""

    support = C.simplex
    event_dim = 1

    def __init__(self, concentration):
        self.concentration = concentration

    def sample(self, rng, sample_shape=()):
        alpha = param_value(self.concentration)
        return rng.dirichlet(alpha, size=sample_shape if sample_shape else None)

    def log_prob(self, value):
        value = as_tensor(value)
        alpha = as_tensor(self.concentration)
        log_norm = ops.sub(
            ops.sum_(ops.lgamma(alpha), axis=-1),
            ops.lgamma(ops.sum_(alpha, axis=-1)),
        )
        kernel = ops.sum_(ops.mul(ops.sub(alpha, 1.0), ops.log(value)), axis=-1)
        return ops.sub(kernel, log_norm)


class MultiNormal(Distribution):
    """``multi_normal(mu, Sigma)`` with a dense covariance matrix."""

    support = C.real
    event_dim = 1

    def __init__(self, loc, covariance):
        self.loc = loc
        self.covariance = covariance

    def sample(self, rng, sample_shape=()):
        mu = param_value(self.loc)
        cov = param_value(self.covariance)
        return rng.multivariate_normal(mu, cov, size=sample_shape if sample_shape else None)

    def log_prob(self, value):
        value = as_tensor(value)
        mu = as_tensor(self.loc)
        cov = param_value(self.covariance)
        dim = cov.shape[-1]
        # Covariance gradients are not propagated (cmdstan-style models in the
        # corpus only use data covariances); value/loc gradients are exact.
        prec = np.linalg.inv(cov)
        _, logdet = np.linalg.slogdet(cov)
        diff = ops.sub(value, mu)
        quad = ops.sum_(ops.mul(ops.matmul(diff, Tensor(prec)), diff), axis=-1)
        const = dim * math.log(2.0 * math.pi) + float(logdet)
        return ops.mul(-0.5, ops.add(quad, const))


class MultiNormalCholesky(Distribution):
    """``multi_normal_cholesky(mu, L)`` with lower Cholesky factor ``L``."""

    support = C.real
    event_dim = 1

    def __init__(self, loc, scale_tril):
        self.loc = loc
        self.scale_tril = scale_tril

    def sample(self, rng, sample_shape=()):
        mu = param_value(self.loc)
        chol = param_value(self.scale_tril)
        shape = tuple(sample_shape) + mu.shape
        eps = rng.standard_normal(shape)
        return mu + eps @ chol.T

    def log_prob(self, value):
        value = as_tensor(value)
        mu = as_tensor(self.loc)
        chol = param_value(self.scale_tril)
        dim = chol.shape[-1]
        inv_chol = np.linalg.inv(chol)
        diff = ops.sub(value, mu)
        z = ops.matmul(diff, Tensor(inv_chol.T))
        quad = ops.sum_(ops.mul(z, z), axis=-1)
        logdet = float(np.sum(np.log(np.abs(np.diag(chol)))))
        const = dim * math.log(2.0 * math.pi) + 2.0 * logdet
        return ops.mul(-0.5, ops.add(quad, const))


class Multinomial(Distribution):
    """``multinomial(theta)`` counts over K categories."""

    is_discrete = True
    event_dim = 1

    def __init__(self, probs, total_count=None):
        self.probs = probs
        self.total_count = total_count
        self.support = C.nonnegative_integer

    def sample(self, rng, sample_shape=()):
        p = param_value(self.probs)
        n = int(param_value(self.total_count)) if self.total_count is not None else 1
        return rng.multinomial(n, p / p.sum(), size=sample_shape if sample_shape else None).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        p = ops.clip(as_tensor(self.probs), 1e-12, 1.0)
        n = ops.sum_(value, axis=-1)
        log_coeff = ops.sub(
            ops.lgamma(ops.add(n, 1.0)),
            ops.sum_(ops.lgamma(ops.add(value, 1.0)), axis=-1),
        )
        return ops.add(log_coeff, ops.sum_(ops.mul(value, ops.log(p)), axis=-1))


class LKJCorrCholesky(Distribution):
    """``lkj_corr_cholesky(eta)`` over Cholesky factors of correlation matrices."""

    support = C.cholesky_corr
    event_dim = 2

    def __init__(self, dim, eta=1.0):
        self.dim = int(dim)
        self.eta = eta

    def sample(self, rng, sample_shape=()):
        # Onion-method sampling of a correlation matrix, then Cholesky.
        d = self.dim
        eta = float(param_value(self.eta))
        beta = eta + (d - 2) / 2.0
        corr = np.eye(d)
        for k in range(1, d):
            beta -= 0.5
            y = rng.beta(k / 2.0, beta)
            u = rng.standard_normal(k)
            u /= np.linalg.norm(u)
            w = np.sqrt(y) * u
            chol_prev = np.linalg.cholesky(corr[:k, :k])
            corr[k, :k] = chol_prev @ w
            corr[:k, k] = corr[k, :k]
        return np.linalg.cholesky(corr)

    def log_prob(self, value):
        L = as_tensor(value)
        eta = as_tensor(self.eta)
        d = self.dim
        total = as_tensor(0.0)
        for k in range(1, d):
            coef = ops.add(ops.mul(2.0, ops.sub(eta, 1.0)), float(d - k - 1))
            total = ops.add(total, ops.mul(coef, ops.log(L[(k, k)])))
        return total
