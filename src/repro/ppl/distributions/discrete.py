"""Univariate discrete distributions.

Note on conventions: Stan's ``categorical`` is defined on ``1..N`` while the
runtime (like Pyro) uses ``0..N-1``; the Stan standard-library shim in
:mod:`repro.core.stanlib` performs the index shift exactly as described in §4
of the paper.  The distributions here always use the 0-based convention.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special as sps

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C
from repro.ppl.distributions.base import Distribution, param_value


def _gather_last(logp: Tensor, idx: np.ndarray, value=None) -> Tensor:
    """Index the trailing (category) axis of ``logp`` by integer array ``idx``.

    Handles arbitrary leading batch axes on either side (the enumeration
    engine broadcasts category probabilities and values against each other,
    e.g. HMM transition rows indexed by the previous state), keeping the
    gather differentiable with respect to ``logp``.  When the indexed
    ``value`` is a tensor, a zero-valued graph link ties it into the result
    — indices are not differentiable, but provenance-based analyses (the
    enumeration engine's term classification) must still see that the
    gather depends on the value.
    """
    idx = np.asarray(idx, dtype=int)
    if logp.data.ndim == 1:
        return _tie_value(ops.getitem(logp, idx), value)
    lead = logp.data.shape[:-1]
    if len(idx.shape) > len(lead) and idx.shape[:len(lead)] == lead:
        # The value carries extra trailing element axes beyond the table's
        # batch shape (e.g. a per-chain probability row shared by all
        # elements of a vectorized observation): align the batch axes on the
        # left by padding singleton element axes into the table.
        logp = ops.reshape(logp, lead + (1,) * (len(idx.shape) - len(lead))
                           + (logp.data.shape[-1],))
    batch_shape = np.broadcast_shapes(logp.data.shape[:-1], idx.shape)
    idx = np.broadcast_to(idx, batch_shape)
    if logp.data.shape[:-1] != batch_shape:
        # Broadcast the probability table up to the batch shape inside the
        # graph so the fancy-index gather below stays well-defined.
        logp = ops.mul(logp, np.ones(batch_shape + (1,)))
    grids = tuple(np.indices(batch_shape))
    return _tie_value(ops.getitem(logp, grids + (idx,)), value)


def _tie_value(out: Tensor, value) -> Tensor:
    """Add a zero-valued graph edge from ``value`` into ``out`` (if a tensor)."""
    if isinstance(value, Tensor):
        return ops.add(out, ops.mul(value, 0.0))
    return out


class Bernoulli(Distribution):
    """``bernoulli(theta)`` with success probability ``theta``."""

    support = C.IntegerInterval(0, 1)
    is_discrete = True

    def __init__(self, probs):
        self.probs = probs

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.probs)
        return (rng.uniform(size=shape) < param_value(self.probs)).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        p = ops.clip(as_tensor(self.probs), 1e-12, 1 - 1e-12)
        return ops.add(
            ops.mul(value, ops.log(p)),
            ops.mul(ops.sub(1.0, value), ops.log1p(ops.neg(p))),
        )

    @property
    def mean(self):
        return param_value(self.probs)

    def enumerate_support(self):
        return np.array([0.0, 1.0])


class BernoulliLogit(Distribution):
    """``bernoulli_logit(alpha)`` parameterised by log-odds."""

    support = C.IntegerInterval(0, 1)
    is_discrete = True

    def __init__(self, logits):
        self.logits = logits

    def sample(self, rng, sample_shape=()):
        probs = sps.expit(param_value(self.logits))
        shape = self.expand_shape(sample_shape, self.logits)
        return (rng.uniform(size=shape) < probs).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        logits = as_tensor(self.logits)
        # log p = y * alpha - log(1 + exp(alpha))
        return ops.sub(ops.mul(value, logits), ops.softplus(logits))

    def enumerate_support(self):
        return np.array([0.0, 1.0])


class Binomial(Distribution):
    """``binomial(N, theta)``."""

    is_discrete = True

    def __init__(self, total_count, probs):
        self.total_count = total_count
        self.probs = probs
        n = param_value(total_count)
        self.support = C.IntegerInterval(0, float(n.max()) if n.size else 0)

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.total_count, self.probs)
        return rng.binomial(
            param_value(self.total_count).astype(int), param_value(self.probs), size=shape
        ).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        n = as_tensor(self.total_count)
        p = ops.clip(as_tensor(self.probs), 1e-12, 1 - 1e-12)
        log_binom = ops.sub(
            ops.lgamma(ops.add(n, 1.0)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(ops.add(ops.sub(n, value), 1.0))),
        )
        return ops.add(
            log_binom,
            ops.add(
                ops.mul(value, ops.log(p)),
                ops.mul(ops.sub(n, value), ops.log1p(ops.neg(p))),
            ),
        )

    def enumerate_support(self):
        return _binomial_support(self.total_count)


class BinomialLogit(Distribution):
    """``binomial_logit(N, alpha)``."""

    is_discrete = True

    def __init__(self, total_count, logits):
        self.total_count = total_count
        self.logits = logits
        n = param_value(total_count)
        self.support = C.IntegerInterval(0, float(n.max()) if n.size else 0)

    def sample(self, rng, sample_shape=()):
        probs = sps.expit(param_value(self.logits))
        shape = self.expand_shape(sample_shape, self.total_count, self.logits)
        return rng.binomial(param_value(self.total_count).astype(int), probs, size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        n = as_tensor(self.total_count)
        logits = as_tensor(self.logits)
        log_binom = ops.sub(
            ops.lgamma(ops.add(n, 1.0)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(ops.add(ops.sub(n, value), 1.0))),
        )
        return ops.add(
            log_binom,
            ops.sub(ops.mul(value, logits), ops.mul(n, ops.softplus(logits))),
        )

    def enumerate_support(self):
        return _binomial_support(self.total_count)


def _binomial_support(total_count) -> np.ndarray:
    """``0..n`` for a bounded (scalar, finite ``n``) binomial."""
    n = param_value(total_count)
    if n.size != 1:
        raise NotImplementedError(
            "Binomial with per-element total_count has no shared enumerable support")
    n = float(n.reshape(()))
    if not math.isfinite(n) or n != round(n) or n < 0:
        raise NotImplementedError(f"Binomial total_count {n!r} is not a finite count")
    return np.arange(int(n) + 1, dtype=float)


class Poisson(Distribution):
    """``poisson(lambda)``."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, rate):
        self.rate = rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.rate)
        return rng.poisson(param_value(self.rate), size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        lam = as_tensor(self.rate)
        return ops.sub(
            ops.sub(ops.mul(value, ops.log(lam)), lam),
            ops.lgamma(ops.add(value, 1.0)),
        )


class PoissonLog(Distribution):
    """``poisson_log(alpha)`` parameterised by the log rate."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, log_rate):
        self.log_rate = log_rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.log_rate)
        return rng.poisson(np.exp(param_value(self.log_rate)), size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        alpha = as_tensor(self.log_rate)
        return ops.sub(
            ops.sub(ops.mul(value, alpha), ops.exp(alpha)),
            ops.lgamma(ops.add(value, 1.0)),
        )


class NegBinomial2(Distribution):
    """``neg_binomial_2(mu, phi)`` (mean / dispersion parameterisation)."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, mu, phi):
        self.mu = mu
        self.phi = phi

    def sample(self, rng, sample_shape=()):
        mu = param_value(self.mu)
        phi = param_value(self.phi)
        shape = self.expand_shape(sample_shape, self.mu, self.phi)
        p = phi / (phi + mu)
        return rng.negative_binomial(phi, p, size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        mu = as_tensor(self.mu)
        phi = as_tensor(self.phi)
        log_binom = ops.sub(
            ops.lgamma(ops.add(value, phi)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(phi)),
        )
        return ops.add(
            log_binom,
            ops.add(
                ops.mul(phi, ops.sub(ops.log(phi), ops.log(ops.add(mu, phi)))),
                ops.mul(value, ops.sub(ops.log(mu), ops.log(ops.add(mu, phi)))),
            ),
        )


class Categorical(Distribution):
    """``categorical(theta)`` over ``0..K-1`` with probability vector ``theta``.

    The probability vector is the trailing dimension; values index into it.
    """

    is_discrete = True
    event_dim = 0

    def __init__(self, probs):
        self.probs = probs
        k = param_value(probs).shape[-1]
        self.support = C.IntegerInterval(0, k - 1)

    def sample(self, rng, sample_shape=()):
        p = param_value(self.probs)
        p = p / p.sum(axis=-1, keepdims=True)
        if p.ndim == 1:
            shape = tuple(sample_shape) if sample_shape else ()
            n = int(np.prod(shape)) if shape else 1
            draws = rng.choice(len(p), size=n, p=p)
            return draws.reshape(shape).astype(float) if shape else float(draws[0])
        flat = p.reshape(-1, p.shape[-1])
        out = np.array([rng.choice(p.shape[-1], p=row / row.sum()) for row in flat])
        return out.reshape(p.shape[:-1]).astype(float)

    def log_prob(self, value):
        probs = ops.clip(as_tensor(self.probs), 1e-12, 1.0)
        logp = ops.log(ops.div(probs, ops.sum_(probs, axis=-1, keepdims=True)))
        idx = np.asarray(param_value(value)).astype(int)
        return _gather_last(logp, idx, value)

    def enumerate_support(self):
        return np.arange(param_value(self.probs).shape[-1], dtype=float)


class CategoricalLogit(Distribution):
    """``categorical_logit(beta)`` over ``0..K-1`` with unnormalised log-odds."""

    is_discrete = True

    def __init__(self, logits):
        self.logits = logits
        k = param_value(logits).shape[-1]
        self.support = C.IntegerInterval(0, k - 1)

    def sample(self, rng, sample_shape=()):
        p = sps.softmax(param_value(self.logits), axis=-1)
        return Categorical(p).sample(rng, sample_shape)

    def log_prob(self, value):
        logp = ops.log_softmax(as_tensor(self.logits), axis=-1)
        idx = np.asarray(param_value(value)).astype(int)
        return _gather_last(logp, idx, value)

    def enumerate_support(self):
        return np.arange(param_value(self.logits).shape[-1], dtype=float)


class OrderedLogistic(Distribution):
    """``ordered_logistic(eta, c)`` over ``0..K`` with cutpoints ``c``."""

    is_discrete = True

    def __init__(self, eta, cutpoints):
        self.eta = eta
        self.cutpoints = cutpoints
        k = param_value(cutpoints).shape[-1]
        self.support = C.IntegerInterval(0, k)

    def _log_probs(self) -> Tensor:
        eta = as_tensor(self.eta)
        cuts = as_tensor(self.cutpoints)
        if eta.data.ndim == 0:
            diffs = ops.sub(cuts, eta)
        else:
            diffs = ops.sub(cuts, ops.reshape(eta, tuple(eta.shape) + (1,)))
        cdf = ops.sigmoid(diffs)
        zero = ops.mul(ops.getitem(cdf, (..., slice(0, 1))), 0.0)
        one = ops.add(zero, 1.0)
        upper = ops.concatenate([cdf, one], axis=-1)
        lower = ops.concatenate([zero, cdf], axis=-1)
        return ops.log(ops.clip(ops.sub(upper, lower), 1e-12, 1.0))

    def sample(self, rng, sample_shape=()):
        logp = self._log_probs().data
        p = np.exp(logp)
        return Categorical(p).sample(rng, sample_shape)

    def log_prob(self, value):
        logp = self._log_probs()
        idx = np.asarray(param_value(value)).astype(int)
        return _gather_last(logp, idx, value)

    def enumerate_support(self):
        return np.arange(param_value(self.cutpoints).shape[-1] + 1, dtype=float)


class IntRange(Distribution):
    """Uniform pmf on the integer range ``lower..upper`` (both inclusive).

    The prior the comprehensive translation assigns to bounded ``int``
    parameter declarations — the discrete analogue of ``bounded_uniform``.
    Bounds must be finite scalars: an unbounded integer parameter has no
    exact enumeration, which the frontend rejects before this is reached.
    """

    is_discrete = True

    def __init__(self, lower, upper, shape: Tuple[int, ...] = ()):
        lo = param_value(lower)
        hi = param_value(upper)
        if lo.size != 1 or hi.size != 1 or not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise ValueError(
                f"int_range requires finite scalar bounds, got lower={lower!r}, upper={upper!r}")
        self.lower = int(round(float(lo.reshape(()))))
        self.upper = int(round(float(hi.reshape(()))))
        if self.upper < self.lower:
            raise ValueError(f"int_range bounds are empty: [{self.lower}, {self.upper}]")
        self.shape = () if shape is None else tuple(int(s) for s in np.atleast_1d(shape))
        self.support = C.IntegerInterval(self.lower, self.upper)

    def sample(self, rng, sample_shape=()):
        shape = tuple(sample_shape) + self.shape
        return np.asarray(
            rng.integers(self.lower, self.upper + 1, size=shape or None), dtype=float)

    def log_prob(self, value):
        value = as_tensor(value)
        k = self.upper - self.lower + 1
        # Proper uniform mass on the range; graph kept connected like the
        # other declaration priors.
        return ops.sub(ops.mul(value, 0.0), math.log(k))

    def enumerate_support(self):
        return np.arange(self.lower, self.upper + 1, dtype=float)
