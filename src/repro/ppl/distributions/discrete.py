"""Univariate discrete distributions.

Note on conventions: Stan's ``categorical`` is defined on ``1..N`` while the
runtime (like Pyro) uses ``0..N-1``; the Stan standard-library shim in
:mod:`repro.core.stanlib` performs the index shift exactly as described in §4
of the paper.  The distributions here always use the 0-based convention.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special as sps

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor
from repro.ppl import constraints as C
from repro.ppl.distributions.base import Distribution, param_value


class Bernoulli(Distribution):
    """``bernoulli(theta)`` with success probability ``theta``."""

    support = C.IntegerInterval(0, 1)
    is_discrete = True

    def __init__(self, probs):
        self.probs = probs

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.probs)
        return (rng.uniform(size=shape) < param_value(self.probs)).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        p = ops.clip(as_tensor(self.probs), 1e-12, 1 - 1e-12)
        return ops.add(
            ops.mul(value, ops.log(p)),
            ops.mul(ops.sub(1.0, value), ops.log1p(ops.neg(p))),
        )

    @property
    def mean(self):
        return param_value(self.probs)


class BernoulliLogit(Distribution):
    """``bernoulli_logit(alpha)`` parameterised by log-odds."""

    support = C.IntegerInterval(0, 1)
    is_discrete = True

    def __init__(self, logits):
        self.logits = logits

    def sample(self, rng, sample_shape=()):
        probs = sps.expit(param_value(self.logits))
        shape = self.expand_shape(sample_shape, self.logits)
        return (rng.uniform(size=shape) < probs).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        logits = as_tensor(self.logits)
        # log p = y * alpha - log(1 + exp(alpha))
        return ops.sub(ops.mul(value, logits), ops.softplus(logits))


class Binomial(Distribution):
    """``binomial(N, theta)``."""

    is_discrete = True

    def __init__(self, total_count, probs):
        self.total_count = total_count
        self.probs = probs
        n = param_value(total_count)
        self.support = C.IntegerInterval(0, float(n.max()) if n.size else 0)

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.total_count, self.probs)
        return rng.binomial(
            param_value(self.total_count).astype(int), param_value(self.probs), size=shape
        ).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        n = as_tensor(self.total_count)
        p = ops.clip(as_tensor(self.probs), 1e-12, 1 - 1e-12)
        log_binom = ops.sub(
            ops.lgamma(ops.add(n, 1.0)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(ops.add(ops.sub(n, value), 1.0))),
        )
        return ops.add(
            log_binom,
            ops.add(
                ops.mul(value, ops.log(p)),
                ops.mul(ops.sub(n, value), ops.log1p(ops.neg(p))),
            ),
        )


class BinomialLogit(Distribution):
    """``binomial_logit(N, alpha)``."""

    is_discrete = True

    def __init__(self, total_count, logits):
        self.total_count = total_count
        self.logits = logits
        n = param_value(total_count)
        self.support = C.IntegerInterval(0, float(n.max()) if n.size else 0)

    def sample(self, rng, sample_shape=()):
        probs = sps.expit(param_value(self.logits))
        shape = self.expand_shape(sample_shape, self.total_count, self.logits)
        return rng.binomial(param_value(self.total_count).astype(int), probs, size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        n = as_tensor(self.total_count)
        logits = as_tensor(self.logits)
        log_binom = ops.sub(
            ops.lgamma(ops.add(n, 1.0)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(ops.add(ops.sub(n, value), 1.0))),
        )
        return ops.add(
            log_binom,
            ops.sub(ops.mul(value, logits), ops.mul(n, ops.softplus(logits))),
        )


class Poisson(Distribution):
    """``poisson(lambda)``."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, rate):
        self.rate = rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.rate)
        return rng.poisson(param_value(self.rate), size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        lam = as_tensor(self.rate)
        return ops.sub(
            ops.sub(ops.mul(value, ops.log(lam)), lam),
            ops.lgamma(ops.add(value, 1.0)),
        )


class PoissonLog(Distribution):
    """``poisson_log(alpha)`` parameterised by the log rate."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, log_rate):
        self.log_rate = log_rate

    def sample(self, rng, sample_shape=()):
        shape = self.expand_shape(sample_shape, self.log_rate)
        return rng.poisson(np.exp(param_value(self.log_rate)), size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        alpha = as_tensor(self.log_rate)
        return ops.sub(
            ops.sub(ops.mul(value, alpha), ops.exp(alpha)),
            ops.lgamma(ops.add(value, 1.0)),
        )


class NegBinomial2(Distribution):
    """``neg_binomial_2(mu, phi)`` (mean / dispersion parameterisation)."""

    support = C.nonnegative_integer
    is_discrete = True

    def __init__(self, mu, phi):
        self.mu = mu
        self.phi = phi

    def sample(self, rng, sample_shape=()):
        mu = param_value(self.mu)
        phi = param_value(self.phi)
        shape = self.expand_shape(sample_shape, self.mu, self.phi)
        p = phi / (phi + mu)
        return rng.negative_binomial(phi, p, size=shape).astype(float)

    def log_prob(self, value):
        value = as_tensor(value)
        mu = as_tensor(self.mu)
        phi = as_tensor(self.phi)
        log_binom = ops.sub(
            ops.lgamma(ops.add(value, phi)),
            ops.add(ops.lgamma(ops.add(value, 1.0)), ops.lgamma(phi)),
        )
        return ops.add(
            log_binom,
            ops.add(
                ops.mul(phi, ops.sub(ops.log(phi), ops.log(ops.add(mu, phi)))),
                ops.mul(value, ops.sub(ops.log(mu), ops.log(ops.add(mu, phi)))),
            ),
        )


class Categorical(Distribution):
    """``categorical(theta)`` over ``0..K-1`` with probability vector ``theta``.

    The probability vector is the trailing dimension; values index into it.
    """

    is_discrete = True
    event_dim = 0

    def __init__(self, probs):
        self.probs = probs
        k = param_value(probs).shape[-1]
        self.support = C.IntegerInterval(0, k - 1)

    def sample(self, rng, sample_shape=()):
        p = param_value(self.probs)
        p = p / p.sum(axis=-1, keepdims=True)
        if p.ndim == 1:
            shape = tuple(sample_shape) if sample_shape else ()
            n = int(np.prod(shape)) if shape else 1
            draws = rng.choice(len(p), size=n, p=p)
            return draws.reshape(shape).astype(float) if shape else float(draws[0])
        flat = p.reshape(-1, p.shape[-1])
        out = np.array([rng.choice(p.shape[-1], p=row / row.sum()) for row in flat])
        return out.reshape(p.shape[:-1]).astype(float)

    def log_prob(self, value):
        probs = ops.clip(as_tensor(self.probs), 1e-12, 1.0)
        logp = ops.log(ops.div(probs, ops.sum_(probs, axis=-1, keepdims=True)))
        idx = np.asarray(param_value(value)).astype(int)
        if logp.data.ndim == 1:
            return logp[idx]
        rows = np.arange(logp.data.shape[0])
        return logp[(rows, idx)]


class CategoricalLogit(Distribution):
    """``categorical_logit(beta)`` over ``0..K-1`` with unnormalised log-odds."""

    is_discrete = True

    def __init__(self, logits):
        self.logits = logits
        k = param_value(logits).shape[-1]
        self.support = C.IntegerInterval(0, k - 1)

    def sample(self, rng, sample_shape=()):
        p = sps.softmax(param_value(self.logits), axis=-1)
        return Categorical(p).sample(rng, sample_shape)

    def log_prob(self, value):
        logp = ops.log_softmax(as_tensor(self.logits), axis=-1)
        idx = np.asarray(param_value(value)).astype(int)
        if logp.data.ndim == 1:
            return logp[idx]
        rows = np.arange(logp.data.shape[0])
        return logp[(rows, idx)]


class OrderedLogistic(Distribution):
    """``ordered_logistic(eta, c)`` over ``0..K`` with cutpoints ``c``."""

    is_discrete = True

    def __init__(self, eta, cutpoints):
        self.eta = eta
        self.cutpoints = cutpoints
        k = param_value(cutpoints).shape[-1]
        self.support = C.IntegerInterval(0, k)

    def _log_probs(self) -> Tensor:
        eta = as_tensor(self.eta)
        cuts = as_tensor(self.cutpoints)
        if eta.data.ndim == 0:
            diffs = ops.sub(cuts, eta)
        else:
            diffs = ops.sub(cuts, ops.reshape(eta, tuple(eta.shape) + (1,)))
        cdf = ops.sigmoid(diffs)
        ones_shape = tuple(cdf.shape[:-1]) + (1,)
        zero = ops.mul(ops.getitem(cdf, (..., slice(0, 1))), 0.0)
        one = ops.add(zero, 1.0)
        upper = ops.concatenate([cdf, one], axis=-1)
        lower = ops.concatenate([zero, cdf], axis=-1)
        return ops.log(ops.clip(ops.sub(upper, lower), 1e-12, 1.0))

    def sample(self, rng, sample_shape=()):
        logp = self._log_probs().data
        p = np.exp(logp)
        return Categorical(p).sample(rng, sample_shape)

    def log_prob(self, value):
        logp = self._log_probs()
        idx = np.asarray(param_value(value)).astype(int)
        if logp.data.ndim == 1:
            return logp[idx]
        rows = np.arange(logp.data.shape[0])
        return logp[(rows, idx)]
