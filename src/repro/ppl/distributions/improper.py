"""Improper and flat priors introduced by the comprehensive translation (§2.3).

For a parameter declared on an unbounded domain the comprehensive translation
samples from ``improper_uniform``, a "distribution" with constant density with
respect to the Lebesgue measure on the declared domain.  Its log density is
identically zero, so it only contributes the constant factor that Lemma 3.1
normalises away.  Sampling is still required (the generative program must be
runnable forward), so ``sample`` draws from a wide proper surrogate on the same
domain; inference never uses those draws except as an initialisation.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import as_tensor
from repro.ppl import constraints as C
from repro.ppl.distributions.base import Distribution, param_value


def _scalar(x, default):
    if x is None:
        return default
    v = param_value(x)
    return float(v) if v.size == 1 else v


class ImproperUniform(Distribution):
    """Constant density on ``[lower, upper]`` (either bound may be infinite).

    ``shape`` gives the event shape of the parameter (Stan arrays/vectors get
    their shape from the declaration, which the compiler passes through, §4).
    """

    def __init__(self, lower=None, upper=None, shape: Tuple[int, ...] = ()):
        self.lower = lower
        self.upper = upper
        self.shape = tuple(int(s) for s in np.atleast_1d(shape)) if np.ndim(shape) else (int(shape),)
        if shape == () or shape is None:
            self.shape = ()
        lo = _scalar(lower, -math.inf)
        hi = _scalar(upper, math.inf)
        lo_f = float(np.min(lo)) if np.ndim(lo) else float(lo)
        hi_f = float(np.max(hi)) if np.ndim(hi) else float(hi)
        self.support = C.Interval(lo_f, hi_f)

    def _bounds(self):
        lo = _scalar(self.lower, -math.inf)
        hi = _scalar(self.upper, math.inf)
        return lo, hi

    def sample(self, rng, sample_shape=()):
        lo, hi = self._bounds()
        shape = tuple(sample_shape) + self.shape
        lo_arr = np.broadcast_to(np.asarray(lo, dtype=float), shape) if shape else np.asarray(lo, dtype=float)
        hi_arr = np.broadcast_to(np.asarray(hi, dtype=float), shape) if shape else np.asarray(hi, dtype=float)
        lo_finite = np.where(np.isfinite(lo_arr), lo_arr, -2.0)
        hi_finite = np.where(np.isfinite(hi_arr), hi_arr, 2.0)
        both_inf = ~np.isfinite(lo_arr) & ~np.isfinite(hi_arr)
        draw = rng.uniform(np.where(both_inf, -2.0, lo_finite), np.where(both_inf, 2.0, hi_finite), size=shape or None)
        return np.asarray(draw, dtype=float)

    def log_prob(self, value):
        value = as_tensor(value)
        # Constant (zero) density; keep the graph connected so gradients exist.
        return ops.mul(value, 0.0)


class Flat(ImproperUniform):
    """Alias for the unbounded improper uniform (Stan's default flat prior)."""

    def __init__(self, shape: Tuple[int, ...] = ()):
        super().__init__(lower=None, upper=None, shape=shape)


class LowerTruncatedImproperUniform(ImproperUniform):
    """Improper uniform on ``[lower, inf)`` — ``<lower=e>`` declarations."""

    def __init__(self, lower=0.0, shape: Tuple[int, ...] = ()):
        super().__init__(lower=lower, upper=None, shape=shape)


class UpperTruncatedImproperUniform(ImproperUniform):
    """Improper uniform on ``(-inf, upper]`` — ``<upper=e>`` declarations."""

    def __init__(self, upper=0.0, shape: Tuple[int, ...] = ()):
        super().__init__(lower=None, upper=upper, shape=shape)


class BoundedUniform(Distribution):
    """Proper uniform prior over a bounded declared domain, with shape.

    Used by the comprehensive translation for ``<lower=a, upper=b>``
    declarations (Fig. 6): a genuine ``uniform([a, b], shape)``.
    """

    def __init__(self, lower, upper, shape: Tuple[int, ...] = ()):
        self.lower = lower
        self.upper = upper
        self.shape = tuple(int(s) for s in np.atleast_1d(shape)) if np.ndim(shape) else (int(shape),)
        if shape == () or shape is None:
            self.shape = ()
        lo = _scalar(lower, 0.0)
        hi = _scalar(upper, 1.0)
        lo_f = float(np.min(lo)) if np.ndim(lo) else float(lo)
        hi_f = float(np.max(hi)) if np.ndim(hi) else float(hi)
        self.support = C.Interval(lo_f, hi_f)

    def sample(self, rng, sample_shape=()):
        lo = param_value(self.lower)
        hi = param_value(self.upper)
        shape = tuple(sample_shape) + self.shape
        return rng.uniform(lo, hi, size=shape or None)

    def log_prob(self, value):
        value = as_tensor(value)
        width = ops.sub(self.upper, self.lower)
        return ops.sub(ops.mul(value, 0.0), ops.log(width))


class ImproperSimplex(Distribution):
    """Flat prior over the simplex (``simplex[K]`` parameter declarations)."""

    support = C.simplex
    event_dim = 1

    def __init__(self, dim: int):
        self.dim = int(dim)

    def sample(self, rng, sample_shape=()):
        return rng.dirichlet(np.ones(self.dim), size=sample_shape if sample_shape else None)

    def log_prob(self, value):
        value = as_tensor(value)
        return ops.mul(ops.sum_(value, axis=-1), 0.0)


class ImproperOrdered(Distribution):
    """Flat prior over ordered vectors (``ordered[K]`` declarations)."""

    support = C.ordered
    event_dim = 1

    def __init__(self, dim: int):
        self.dim = int(dim)

    def sample(self, rng, sample_shape=()):
        shape = tuple(sample_shape) + (self.dim,)
        return np.sort(rng.normal(0.0, 1.0, size=shape), axis=-1)

    def log_prob(self, value):
        value = as_tensor(value)
        return ops.mul(ops.sum_(value, axis=-1), 0.0)


class ImproperPositiveOrdered(ImproperOrdered):
    """Flat prior over positive ordered vectors."""

    support = C.positive_ordered

    def sample(self, rng, sample_shape=()):
        shape = tuple(sample_shape) + (self.dim,)
        return np.sort(rng.exponential(1.0, size=shape), axis=-1)
