"""Plain-dict request/response schema of the serving layer.

The serving layer is transport-agnostic: a request is a plain JSON-able
dict, a response is a plain JSON-able dict, and every front end (the
in-process :meth:`~repro.serve.server.PosteriorServer.query`, the asyncio
:meth:`~repro.serve.server.PosteriorServer.handle`, the stdlib HTTP
handler of :mod:`repro.serve.http`) moves the same payloads.  This module
owns the request normalisation, the canonical data digest that keys the
per-dataset cache, and the response assembly, so the three fronts cannot
drift apart.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

import numpy as np

#: Version stamp carried by every response (and the guide artifacts of
#: :mod:`repro.serve.artifacts` carry their own).
SERVE_SCHEMA_VERSION = 1

#: What a request may ask the trust gate to do when k-hat exceeds the
#: threshold: ``"none"`` (just flag the response untrusted), ``"enqueue"``
#: (flag it *and* queue a background NUTS refit for future requests) or
#: ``"wait"`` (block on the refit and return the trusted posterior).
FALLBACK_MODES = ("none", "enqueue", "wait")

DEFAULT_NUM_DRAWS = 64
MAX_NUM_DRAWS = 8192


class ServeError(Exception):
    """Base class of serving-layer failures."""


class RequestError(ServeError):
    """A request dict failed validation."""


def _jsonable(value: Any) -> Any:
    """Recursively coerce numpy payloads to plain JSON-able Python."""
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(val) for val in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def canonical_data(data: Dict[str, Any]) -> Dict[str, Any]:
    """A JSON-able copy of a data dict with deterministic key order."""
    if not isinstance(data, dict):
        raise RequestError(f"request data must be a dict, got {type(data).__name__}")
    return {key: _jsonable(data[key]) for key in sorted(data, key=str)}


def data_digest(data: Dict[str, Any]) -> str:
    """Content digest of a data dict — the per-dataset cache key.

    Keyed like the compile cache keys source text: the canonical JSON
    rendering *is* the identity, so two requests carrying equal data (lists
    or arrays, any key order) share one cache entry, one k-hat, and one
    refit.
    """
    payload = json.dumps(canonical_data(data), sort_keys=True,
                         separators=(",", ":"), allow_nan=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def derived_seed(digest: str, salt: int = 0) -> int:
    """A deterministic RNG seed derived from a data digest.

    Requests that do not pin a seed still must draw reproducibly — and
    independently of which batch they were coalesced into — so the default
    seed is a pure function of the data.
    """
    return (int(digest[:12], 16) ^ salt) % (2 ** 31)


def make_request(data: Dict[str, Any], *, model: Optional[str] = None,
                 num_draws: Optional[int] = None, seed: Optional[int] = None,
                 fallback: str = "enqueue",
                 request_id: Optional[str] = None) -> Dict[str, Any]:
    """Convenience constructor of a well-formed request dict."""
    request: Dict[str, Any] = {"data": data, "fallback": fallback}
    if model is not None:
        request["model"] = model
    if num_draws is not None:
        request["num_draws"] = num_draws
    if seed is not None:
        request["seed"] = seed
    if request_id is not None:
        request["request_id"] = request_id
    return request


def normalize_request(request: Dict[str, Any], *,
                      default_model: Optional[str] = None,
                      default_num_draws: int = DEFAULT_NUM_DRAWS) -> Dict[str, Any]:
    """Validate a request dict and return its normalised copy.

    Raises :class:`RequestError` with a message naming the offending field;
    the server turns that into a ``status="error"`` response rather than a
    500.
    """
    if not isinstance(request, dict):
        raise RequestError(f"request must be a dict, got {type(request).__name__}")
    unknown = set(request) - {"data", "model", "num_draws", "seed", "fallback",
                              "request_id"}
    if unknown:
        raise RequestError(f"unknown request fields: {sorted(unknown)}")
    if "data" not in request:
        raise RequestError("request is missing the 'data' field")
    data = canonical_data(request["data"])
    model = request.get("model", default_model)
    if model is None:
        raise RequestError("request names no 'model' and the server has no default")
    num_draws = request.get("num_draws", default_num_draws)
    if not isinstance(num_draws, int) or isinstance(num_draws, bool) \
            or not 1 <= num_draws <= MAX_NUM_DRAWS:
        raise RequestError(
            f"num_draws must be an int in [1, {MAX_NUM_DRAWS}], got {num_draws!r}")
    seed = request.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise RequestError(f"seed must be an int or None, got {seed!r}")
    fallback = request.get("fallback", "enqueue")
    if fallback not in FALLBACK_MODES:
        raise RequestError(
            f"fallback must be one of {FALLBACK_MODES}, got {fallback!r}")
    return {
        "data": data,
        "model": str(model),
        "num_draws": num_draws,
        "seed": seed,
        "fallback": fallback,
        "request_id": request.get("request_id"),
    }


def make_response(*, request_id: Optional[str], model: str, status: str,
                  source: Optional[str] = None, trusted: Optional[bool] = None,
                  khat: Optional[float] = None, fallback: Optional[str] = None,
                  draws: Optional[Dict[str, Any]] = None,
                  moments: Optional[Dict[str, Any]] = None,
                  error: Optional[str] = None,
                  metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a response dict (one shape for every transport)."""
    response: Dict[str, Any] = {
        "schema_version": SERVE_SCHEMA_VERSION,
        "request_id": request_id,
        "model": model,
        "status": status,
    }
    if error is not None:
        response["error"] = error
    if status == "ok":
        response.update({
            "source": source,
            "trusted": bool(trusted),
            "khat": None if khat is None else float(khat),
            "fallback": fallback,
            "draws": _jsonable(draws or {}),
        })
        if moments is not None:
            response["moments"] = _jsonable(moments)
    response["metadata"] = _jsonable(metadata or {})
    return response
