"""The bounded background refit pool behind the trust gate.

When a query's k-hat says the amortized guide does not cover its posterior,
the server enqueues a real NUTS refit here.  The pool is deliberately
bounded in both dimensions: ``max_workers`` threads drain a queue whose
depth is capped at ``max_queue`` — a burst of off-manifold queries past the
cap is *shed* (``submit`` returns ``False`` and the response says so)
instead of growing an unbounded backlog behind a blocked server.  Each job
gets ``max_retries`` retries with exponential backoff for *failing*
attempts.  A *timed-out* attempt is different: its thread is abandoned
(daemonised — Python cannot cancel it) but keeps running the fit under
:data:`~repro.serve.amortized.EVAL_LOCK`, so retrying would immediately
block behind it and stack a duplicate fit; a timeout therefore fails the
job outright.  If the abandoned thread does finish later, its posterior is
landed on the entry after the fact (and the checkpointed fit means a
future resubmission resumes rather than restarts).
"""

from __future__ import annotations

import threading
import time
import queue
from typing import Callable, Optional

from repro.obs import NULL_TELEMETRY
from repro.serve.registry import CacheEntry
from repro.serve.schema import ServeError


class RefitTimeout(ServeError):
    """One refit attempt exceeded the pool's per-attempt timeout."""


def _call_with_timeout(fn: Callable, entry: CacheEntry,
                       timeout_s: Optional[float]):
    """Run ``fn(entry)`` with a wall-clock bound.

    ``None`` means unbounded (call inline).  Otherwise the call runs on a
    one-shot daemon thread and is abandoned on timeout — the documented
    limitation of thread-based timeouts.  An abandoned attempt that
    eventually finishes *late-lands* its posterior on the entry (unless a
    result already arrived), so the work is not thrown away; the
    checkpointed fit covers the crash/kill case.
    """
    if timeout_s is None:
        return fn(entry)
    box: dict = {}

    def target() -> None:
        try:
            value = fn(entry)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc
            return
        box["value"] = value
        if box.get("abandoned") and entry is not None:
            with entry.lock:
                if entry.refit_status != "done":
                    entry.refit_posterior = value
                    entry.refit_status = "done"
                    entry.refit_error = None
            entry.refit_event.set()

    thread = threading.Thread(target=target, daemon=True,
                              name="repro-serve-refit-attempt")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        box["abandoned"] = True
        raise RefitTimeout(f"refit attempt exceeded {timeout_s:.1f}s")
    if "error" in box:
        raise box["error"]
    return box["value"]


class RefitPool:
    """Bounded worker pool running ``refit(entry)`` jobs with retry/backoff."""

    def __init__(self, refit: Callable[[CacheEntry], object], *,
                 max_workers: int = 2, max_queue: int = 8,
                 max_retries: int = 2, timeout_s: Optional[float] = None,
                 backoff_s: float = 0.25, telemetry=NULL_TELEMETRY,
                 metrics=None):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._refit = refit
        self.max_workers = int(max_workers)
        self.max_queue = int(max_queue)
        self.max_retries = int(max_retries)
        self.timeout_s = timeout_s
        self.backoff_s = float(backoff_s)
        self.telemetry = telemetry
        self.metrics = metrics
        self._queue: "queue.Queue[Optional[CacheEntry]]" = queue.Queue()
        self._depth = 0
        self._lock = threading.Lock()
        self._threads: list = []
        self._closed = False

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._threads:
            return
        for index in range(self.max_workers):
            thread = threading.Thread(target=self._worker, daemon=True,
                                      name=f"repro-serve-refit-{index}")
            thread.start()
            self._threads.append(thread)

    def submit(self, entry: CacheEntry) -> bool:
        """Enqueue a refit; ``False`` means the queue is full (load shed).

        Idempotent per entry: an entry already queued, running or finished
        is not re-enqueued (and counts as accepted).
        """
        with entry.lock:
            if entry.refit_status in ("queued", "running", "done"):
                return True
            with self._lock:
                if self._closed:
                    return False
                if self._depth >= self.max_queue:
                    if self.metrics is not None:
                        self.metrics.inc("serve.refits_shed")
                    self.telemetry.event("serve.shed", digest=entry.digest[:12],
                                         depth=self._depth)
                    return False
                self._depth += 1
                depth = self._depth
            entry.refit_status = "queued"
            entry.refit_error = None
            entry.refit_event.clear()
        if self.metrics is not None:
            self.metrics.inc("serve.refits_queued")
            self.metrics.set_info("serve.refit_queue_depth", depth)
        self._ensure_workers()
        self._queue.put(entry)
        return True

    @property
    def depth(self) -> int:
        """Jobs queued or running right now."""
        with self._lock:
            return self._depth

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            entry = self._queue.get()
            if entry is None:
                return
            try:
                self._process(entry)
            finally:
                with self._lock:
                    self._depth -= 1
                    depth = self._depth
                if self.metrics is not None:
                    self.metrics.set_info("serve.refit_queue_depth", depth)
                entry.refit_event.set()

    def _process(self, entry: CacheEntry) -> None:
        with entry.lock:
            entry.refit_status = "running"
        with self.telemetry.span("serve.fallback", digest=entry.digest[:12],
                                 model=entry.model.name) as span:
            for attempt in range(self.max_retries + 1):
                try:
                    posterior = _call_with_timeout(self._refit, entry,
                                                   self.timeout_s)
                except RefitTimeout as exc:
                    # The abandoned attempt's thread is still running the
                    # fit under EVAL_LOCK: a retry would block behind it and
                    # queue a duplicate fit, so the timeout bounds nothing.
                    # Fail the job outright; the attempt late-lands its
                    # posterior if it ever finishes, and the checkpoint lets
                    # a future resubmission resume.
                    with entry.lock:
                        if entry.refit_status != "done":
                            entry.refit_status = "failed"
                            entry.refit_error = f"{type(exc).__name__}: {exc}"
                    if self.metrics is not None:
                        self.metrics.inc("serve.refit_attempt_errors")
                        self.metrics.inc("serve.refits_failed")
                    span.set(outcome="timeout", attempts=attempt + 1)
                    return
                except Exception as exc:  # noqa: BLE001 - retried/recorded
                    if self.metrics is not None:
                        self.metrics.inc("serve.refit_attempt_errors")
                    if attempt >= self.max_retries:
                        with entry.lock:
                            entry.refit_status = "failed"
                            entry.refit_error = f"{type(exc).__name__}: {exc}"
                        if self.metrics is not None:
                            self.metrics.inc("serve.refits_failed")
                        span.set(outcome="failed", attempts=attempt + 1)
                        return
                    if self.metrics is not None:
                        self.metrics.inc("serve.refit_retries")
                    time.sleep(self.backoff_s * (2 ** attempt))
                    continue
                with entry.lock:
                    entry.refit_posterior = posterior
                    entry.refit_status = "done"
                if self.metrics is not None:
                    self.metrics.inc("serve.refits_done")
                span.set(outcome="done", attempts=attempt + 1)
                return

    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs and shut the workers down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
