"""The amortized posterior serving layer: one fit, millions of queries.

The DeepStan extension makes amortized inference *expressible* (neural
guides conditioned on data); this subsystem makes it *operable*.  An
:class:`AmortizedModel` trains one :class:`~repro.guides.neural.AutoNeural`
guide on reference data (``train``), persists it as a schema-versioned
artifact (``save``/``load``), and then answers per-request
``data -> Posterior`` queries with a single MLP forward.  The
:class:`PosteriorServer` puts that behind a request loop:

* an asyncio **micro-batcher** (:class:`MicroBatcher`) coalesces concurrent
  requests onto one stacked guide evaluation — N queries, one forward;
* a **trust gate** stamps every response with a per-query PSIS k-hat and
  degrades gracefully above the threshold: the guide posterior ships
  flagged ``trusted=False`` while a checkpointed NUTS refit runs on a
  bounded background pool (:class:`RefitPool`) with retry, backoff,
  timeout, and explicit load shedding;
* a **registry + per-dataset cache** (:class:`ModelRegistry`) keyed by
  content digest, so equal data shares one potential, one k-hat, one refit;
* full telemetry: ``serve.request`` / ``serve.batch`` / ``serve.fallback``
  spans, latency and queue-depth counters in the metrics registry, and the
  telemetry digest in every response's metadata.

The request/response schema is plain dicts (:mod:`repro.serve.schema`), so
the layer is transport-agnostic; :mod:`repro.serve.http` is the optional
stdlib HTTP front.
"""

from repro.serve.amortized import EVAL_LOCK, AmortizedModel, NotTrainedError
from repro.serve.artifacts import (
    AMORTIZED_FORMAT,
    AMORTIZED_SCHEMA_VERSION,
    load_amortized,
    save_amortized,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.http import start_http
from repro.serve.registry import CacheEntry, ModelRegistry
from repro.serve.schema import (
    DEFAULT_NUM_DRAWS,
    FALLBACK_MODES,
    SERVE_SCHEMA_VERSION,
    RequestError,
    ServeError,
    data_digest,
    make_request,
    normalize_request,
)
from repro.serve.server import PosteriorServer, ServerConfig
from repro.serve.workers import RefitPool, RefitTimeout

__all__ = [
    "AmortizedModel",
    "NotTrainedError",
    "EVAL_LOCK",
    "AMORTIZED_FORMAT",
    "AMORTIZED_SCHEMA_VERSION",
    "save_amortized",
    "load_amortized",
    "MicroBatcher",
    "ModelRegistry",
    "CacheEntry",
    "RefitPool",
    "RefitTimeout",
    "PosteriorServer",
    "ServerConfig",
    "start_http",
    "SERVE_SCHEMA_VERSION",
    "DEFAULT_NUM_DRAWS",
    "FALLBACK_MODES",
    "ServeError",
    "RequestError",
    "data_digest",
    "make_request",
    "normalize_request",
]
