"""Schema-versioned save/load of trained amortized guides.

Mirrors the :meth:`repro.infer.results.Posterior.save` idiom: the array
payload (the guide network's weights) goes to ``<path>.npz`` uncompressed —
the round trip is exact to the bit — and a ``<path>.json`` sidecar carries
the format tag, schema version, the *full recipe* for rebuilding the guide
(model source, compile options, guide construction arguments, reference
data) and the training record.  ``load`` recompiles the model and re-derives
the guide architecture from it, then overwrites the weights, so a corrupt or
mismatched artifact fails loudly instead of serving garbage.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

from repro.serve.amortized import AmortizedModel, NotTrainedError
from repro.serve.schema import ServeError

AMORTIZED_FORMAT = "repro-amortized-guide"
AMORTIZED_SCHEMA_VERSION = 1


def _paths(path: str) -> tuple:
    for suffix in (".npz", ".json"):
        if path.endswith(suffix):
            path = path[:-len(suffix)]
            break
    return path + ".npz", path + ".json"


def save_amortized(model: AmortizedModel, path: str) -> str:
    """Write ``<path>.npz`` (weights) + ``<path>.json`` (recipe); returns the
    ``.npz`` path."""
    if not model.trained:
        raise NotTrainedError("cannot save an untrained AmortizedModel")
    npz_path, json_path = _paths(path)
    directory = os.path.dirname(os.path.abspath(npz_path))
    os.makedirs(directory, exist_ok=True)
    state = model.guide.net.state_dict()
    arrays = {f"net/{name}": np.asarray(value, dtype=float)
              for name, value in state.items()}
    np.savez(npz_path, **arrays)
    sidecar = {
        "format": AMORTIZED_FORMAT,
        "schema_version": AMORTIZED_SCHEMA_VERSION,
        "model": {
            "source": model.source,
            "name": model.name,
            "scheme": model.scheme,
            "backend": model.backend,
            "engine": model.engine,
        },
        "guide": {
            "hidden": list(model.hidden),
            "activation": model.activation,
            "init_seed": model.init_seed,
        },
        "dim": int(model.dim),
        "feature_dim": int(model.guide._x.shape[1]),
        "net_keys": sorted(state),
        "reference_data": model.reference_data,
        "training": model.training,
    }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(sidecar, handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")
    return npz_path


def load_amortized(path: str, *, obs: Any = None) -> AmortizedModel:
    """Rebuild a trained :class:`AmortizedModel` from a saved artifact.

    Accepts the ``.npz`` path, the ``.json`` sidecar path, or the common
    basename.  Recompiles the recorded source, re-derives the guide from
    the reference data, and checks that the artifact's latent/feature
    dimensions still match what the model yields — a drifted model source
    or reference dataset raises instead of loading weights that no longer
    fit.
    """
    npz_path, json_path = _paths(path)
    with open(json_path, "r", encoding="utf-8") as handle:
        sidecar = json.load(handle)
    if sidecar.get("format") != AMORTIZED_FORMAT:
        raise ServeError(f"{json_path} is not a saved amortized guide "
                         f"(format={sidecar.get('format')!r})")
    version = sidecar.get("schema_version")
    if version != AMORTIZED_SCHEMA_VERSION:
        raise ServeError(
            f"amortized-guide schema version {version} is not supported "
            f"(expected {AMORTIZED_SCHEMA_VERSION})")
    spec = sidecar["model"]
    guide_spec = sidecar["guide"]
    model = AmortizedModel(spec["source"], name=spec["name"],
                           scheme=spec["scheme"], backend=spec["backend"],
                           engine=spec.get("engine"),
                           hidden=tuple(guide_spec["hidden"]),
                           activation=guide_spec["activation"],
                           init_seed=int(guide_spec["init_seed"]), obs=obs)
    with np.load(npz_path) as payload:
        state: Dict[str, np.ndarray] = {
            name: np.array(payload[f"net/{name}"])
            for name in sidecar["net_keys"]}
    model.bind_trained(sidecar["reference_data"], state,
                       training=sidecar.get("training"))
    if int(model.dim) != int(sidecar["dim"]):
        raise ServeError(
            f"artifact records dim={sidecar['dim']} but the recompiled model "
            f"yields dim={model.dim} — source and artifact have diverged")
    if int(model.guide._x.shape[1]) != int(sidecar["feature_dim"]):
        raise ServeError(
            f"artifact records feature_dim={sidecar['feature_dim']} but the "
            f"reference data yields {model.guide._x.shape[1]}")
    return model
