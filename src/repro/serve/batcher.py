"""The asyncio micro-batcher: coalesce concurrent queries into one forward.

Requests arriving within a window (``max_wait_ms``) or up to a cap
(``max_batch_size``) are collected and handed to one ``evaluate(items)``
call on an executor thread — the serving analogue of riding the batched
chain axis: N queries cost one stacked guide forward instead of N.  The
batcher is policy-free: it neither inspects items nor orders results beyond
position, so the server owns the evaluation semantics (fused-versus-rows
validation included) and the batcher owns only the coalescing.

Failure semantics: if ``evaluate`` raises, every waiter in that batch gets
the exception (a batch is one evaluation; there is no partial success), and
the batcher stays usable for the next batch.

Threading contract: the batcher is single-loop.  ``_pending``/``_timer``
are mutated without locks and the futures it completes are asyncio futures
(not thread-safe), so every ``submit`` must run on one owning event loop —
the loop of the first ``submit`` binds the batcher, and submitting from any
other loop raises.  :class:`~repro.serve.server.PosteriorServer` upholds
this by bridging every caller (sync front *and* async ``handle``) onto its
dedicated loop thread.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import NULL_TELEMETRY


class MicroBatcher:
    """Coalesce awaited ``submit`` calls into batched ``evaluate`` calls.

    Parameters
    ----------
    evaluate:
        ``items -> results`` (same length, same order), called on an
        executor thread — it may block.
    max_batch_size:
        Flush immediately once this many requests are pending.
    max_wait_ms:
        Flush this long after the first pending request otherwise.  The
        window only ever delays the *first* request of a batch; a full
        batch never waits.
    """

    def __init__(self, evaluate: Callable[[List[Any]], Sequence[Any]], *,
                 max_batch_size: int = 16, max_wait_ms: float = 2.0,
                 telemetry=NULL_TELEMETRY, metrics=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._evaluate = evaluate
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.telemetry = telemetry
        self.metrics = metrics
        self._pending: List[Tuple[Any, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._largest_batch = 0

    # ------------------------------------------------------------------
    async def submit(self, item: Any) -> Any:
        """Queue one item and await its result from the coalesced batch.

        Must run on the batcher's owning loop (bound by the first submit);
        a foreign loop raises ``RuntimeError`` instead of racing the
        pending batch and completing futures cross-thread.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif loop is not self._loop:
            raise RuntimeError(
                "MicroBatcher is bound to the event loop of its first "
                "submit; submitting from a second loop would race the "
                "pending batch. Route requests through one loop "
                "(PosteriorServer.handle bridges foreign loops onto the "
                "server loop).")
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.max_batch_size:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait_s, self._flush)
        return await future

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Seal the pending batch and start its evaluation (loop thread)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        asyncio.ensure_future(self._run(batch))

    async def _run(self, batch: List[Tuple[Any, asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        items = [item for item, _ in batch]
        size = len(items)
        self._largest_batch = max(self._largest_batch, size)
        with self.telemetry.span("serve.batch", size=size):
            try:
                results = await loop.run_in_executor(
                    None, self._evaluate, items)
            except Exception as exc:  # noqa: BLE001 - forwarded to waiters
                if self.metrics is not None:
                    self.metrics.inc("serve.batch_errors")
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
        if self.metrics is not None:
            self.metrics.inc("serve.batches")
            self.metrics.inc("serve.batched_requests", size)
            self.metrics.set_info("serve.largest_batch", self._largest_batch)
        if len(results) != size:
            for _, future in batch:
                if not future.done():
                    future.set_exception(RuntimeError(
                        f"evaluate returned {len(results)} results for "
                        f"{size} items"))
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------
    @property
    def largest_batch(self) -> int:
        """The largest batch coalesced so far (observability helper)."""
        return self._largest_batch
