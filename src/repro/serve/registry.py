"""Model registry and the per-dataset serving cache.

The registry owns two maps behind one lock: ``name -> AmortizedModel`` (what
the server can serve) and ``(name, data digest) -> CacheEntry`` (everything
expensive that one dataset's queries share).  A cache entry is built once
per distinct dataset — the per-query potential (a traced model run), the
guide feature row, and later the k-hat score and any NUTS refit result —
and every subsequent request for equal data reuses it.  Keyed like the
compile cache: content identity (the canonical JSON digest of the data),
not object identity, with LRU eviction at ``max_entries``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.amortized import AmortizedModel
from repro.serve.schema import ServeError, data_digest


class CacheEntry:
    """Per-(model, dataset) serving state.

    ``registry_name`` is the name requests route by — distinct from
    ``model.name``, which is the model's own attribute and may collide
    across separately registered models; the server groups batched
    evaluations by the registry identity, never by ``model.name``.

    ``khat`` and the refit fields start unset and are filled in by the
    server's trust gate under ``entry.lock``; ``refit_event`` lets
    ``fallback="wait"`` requests block on a background refit without
    polling.
    """

    __slots__ = ("model", "registry_name", "digest", "data", "potential",
                 "features", "khat", "refit_status", "refit_posterior",
                 "refit_error", "refit_event", "lock")

    def __init__(self, model: AmortizedModel, digest: str,
                 data: Dict[str, Any], potential, features: np.ndarray,
                 registry_name: Optional[str] = None):
        self.model = model
        self.registry_name = str(registry_name if registry_name is not None
                                 else model.name)
        self.digest = digest
        self.data = data
        self.potential = potential
        self.features = features
        self.khat: Optional[float] = None
        #: "none" -> "queued" -> "running" -> "done" | "failed"
        self.refit_status = "none"
        self.refit_posterior = None
        self.refit_error: Optional[str] = None
        self.refit_event = threading.Event()
        self.lock = threading.RLock()

    def __repr__(self) -> str:
        khat = "?" if self.khat is None else f"{self.khat:.3f}"
        return (f"CacheEntry(model={self.model.name!r}, "
                f"digest={self.digest[:12]}, khat={khat}, "
                f"refit={self.refit_status})")


class _PendingBuild:
    """A build-in-progress placeholder for one cold cache key.

    The builder thread fills ``entry`` or ``error`` and sets ``event``;
    concurrent requests for the same key wait on the event instead of
    duplicating the build — and crucially wait *off* the registry lock, so
    cache hits for other datasets never queue behind a cold build.
    """

    __slots__ = ("event", "entry", "error")

    def __init__(self):
        self.event = threading.Event()
        self.entry: Optional[CacheEntry] = None
        self.error: Optional[BaseException] = None


class ModelRegistry:
    """Thread-safe ``name -> model`` registry plus the per-dataset cache."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._models: Dict[str, AmortizedModel] = {}
        self._cache: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._building: Dict[tuple, _PendingBuild] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def register(self, model: AmortizedModel,
                 name: Optional[str] = None) -> AmortizedModel:
        """Register a trained model under ``name`` (default: its own name)."""
        key = str(name if name is not None else model.name)
        with self._lock:
            self._models[key] = model
        return model

    def get(self, name: str) -> AmortizedModel:
        with self._lock:
            model = self._models.get(str(name))
        if model is None:
            raise ServeError(
                f"no model registered under {name!r} "
                f"(registered: {self.model_names()})")
        return model

    def model_names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def default_model_name(self) -> Optional[str]:
        """The sole registered name, if exactly one model is registered."""
        with self._lock:
            names = list(self._models)
        return names[0] if len(names) == 1 else None

    # ------------------------------------------------------------------
    def entry_for(self, name: str, data: Dict[str, Any]) -> CacheEntry:
        """The cache entry for ``(model, data)``, building it on first use.

        Building runs a traced model evaluation (under the serving
        evaluation lock, inside :meth:`AmortizedModel.potential_for`), so
        this is called from executor threads, never the event loop.

        The registry lock is held only for map reads and inserts — the
        build itself runs off-lock behind a per-key :class:`_PendingBuild`
        placeholder.  ``potential_for`` can block on :data:`EVAL_LOCK` for
        the length of a background NUTS refit, and holding the registry
        lock across that would stall every request, cache hits included.
        A thundering herd of equal cold requests still builds once: the
        herd waits on the placeholder, not on a duplicate build.
        """
        model = self.get(name)
        digest = data_digest(data)
        key = (str(name), digest)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                return entry
            pending = self._building.get(key)
            if pending is None:
                pending = _PendingBuild()
                self._building[key] = pending
                builder = True
            else:
                builder = False
        if not builder:
            pending.event.wait()
            if pending.error is not None:
                raise pending.error
            assert pending.entry is not None
            return pending.entry
        try:
            potential = model.potential_for(data)
            # Batched k-hat fast path: ``potential_for`` hands every cache
            # entry's potential the model-wide shared tier table, so only
            # the *first* entry per model (usually the training reference)
            # pays the batched-mode probe classification — cold datasets go
            # straight to the validated tier for their first k-hat.
            features = model.features_for(potential)
            entry = CacheEntry(model, digest, dict(data), potential, features,
                               registry_name=str(name))
            with self._lock:
                self._cache[key] = entry
                while len(self._cache) > self.max_entries:
                    self._cache.popitem(last=False)
            pending.entry = entry
            return entry
        except BaseException as exc:
            pending.error = exc
            raise
        finally:
            with self._lock:
                self._building.pop(key, None)
            pending.event.set()

    def cached_entries(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (f"ModelRegistry({len(self._models)} model(s), "
                    f"{len(self._cache)}/{self.max_entries} cached dataset(s))")
