"""Model registry and the per-dataset serving cache.

The registry owns two maps behind one lock: ``name -> AmortizedModel`` (what
the server can serve) and ``(name, data digest) -> CacheEntry`` (everything
expensive that one dataset's queries share).  A cache entry is built once
per distinct dataset — the per-query potential (a traced model run), the
guide feature row, and later the k-hat score and any NUTS refit result —
and every subsequent request for equal data reuses it.  Keyed like the
compile cache: content identity (the canonical JSON digest of the data),
not object identity, with LRU eviction at ``max_entries``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.amortized import AmortizedModel
from repro.serve.schema import ServeError, data_digest


class CacheEntry:
    """Per-(model, dataset) serving state.

    ``khat`` and the refit fields start unset and are filled in by the
    server's trust gate under ``entry.lock``; ``refit_event`` lets
    ``fallback="wait"`` requests block on a background refit without
    polling.
    """

    __slots__ = ("model", "digest", "data", "potential", "features", "khat",
                 "refit_status", "refit_posterior", "refit_error",
                 "refit_event", "lock")

    def __init__(self, model: AmortizedModel, digest: str,
                 data: Dict[str, Any], potential, features: np.ndarray):
        self.model = model
        self.digest = digest
        self.data = data
        self.potential = potential
        self.features = features
        self.khat: Optional[float] = None
        #: "none" -> "queued" -> "running" -> "done" | "failed"
        self.refit_status = "none"
        self.refit_posterior = None
        self.refit_error: Optional[str] = None
        self.refit_event = threading.Event()
        self.lock = threading.RLock()

    def __repr__(self) -> str:
        khat = "?" if self.khat is None else f"{self.khat:.3f}"
        return (f"CacheEntry(model={self.model.name!r}, "
                f"digest={self.digest[:12]}, khat={khat}, "
                f"refit={self.refit_status})")


class ModelRegistry:
    """Thread-safe ``name -> model`` registry plus the per-dataset cache."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._models: Dict[str, AmortizedModel] = {}
        self._cache: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def register(self, model: AmortizedModel,
                 name: Optional[str] = None) -> AmortizedModel:
        """Register a trained model under ``name`` (default: its own name)."""
        key = str(name if name is not None else model.name)
        with self._lock:
            self._models[key] = model
        return model

    def get(self, name: str) -> AmortizedModel:
        with self._lock:
            model = self._models.get(str(name))
        if model is None:
            raise ServeError(
                f"no model registered under {name!r} "
                f"(registered: {self.model_names()})")
        return model

    def model_names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def default_model_name(self) -> Optional[str]:
        """The sole registered name, if exactly one model is registered."""
        with self._lock:
            names = list(self._models)
        return names[0] if len(names) == 1 else None

    # ------------------------------------------------------------------
    def entry_for(self, name: str, data: Dict[str, Any]) -> CacheEntry:
        """The cache entry for ``(model, data)``, building it on first use.

        Building runs a traced model evaluation (under the serving
        evaluation lock, inside :meth:`AmortizedModel.potential_for`), so
        this is called from executor threads, never the event loop.
        """
        model = self.get(name)
        digest = data_digest(data)
        key = (str(name), digest)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                return entry
            # Build while holding the registry lock: a cold dataset is built
            # exactly once even under a thundering herd of equal requests.
            potential = model.potential_for(data)
            features = model.features_for(potential)
            entry = CacheEntry(model, digest, dict(data), potential, features)
            self._cache[key] = entry
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
            return entry

    def cached_entries(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (f"ModelRegistry({len(self._models)} model(s), "
                    f"{len(self._cache)}/{self.max_entries} cached dataset(s))")
