"""The posterior server: registry + micro-batcher + trust gate + fallback.

One :class:`PosteriorServer` serves ``data -> Posterior`` queries for the
trained :class:`~repro.serve.amortized.AmortizedModel`\\ s in its registry.
A request flows: normalise -> per-dataset cache entry (potential +
features, built once per distinct dataset) -> micro-batched guide forward
(N coalesced requests, one stacked MLP evaluation) -> trust gate (per-query
PSIS k-hat; above the threshold the response is flagged ``trusted=False``
and a checkpointed NUTS refit is queued, awaited, or skipped per the
request's ``fallback`` mode) -> response dict stamped with k-hat, latency
and the telemetry digest.

Bitwise contract: an instrumented server response carries exactly the draws
of :meth:`AmortizedModel.query_direct` for the same data and seed.  The
fused stacked forward is *validated* against the per-row path on the first
multi-request batch (the repo's optimistic validate-and-demote idiom) and
permanently demoted to per-row evaluation inside the batch if any array
differs by one bit — coalescing still amortizes the request loop either
way, and the recorded mode is visible as the ``serve.batch_mode.<model>``
metrics label.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.infer.importance import PSIS_MIN_DRAWS
from repro.obs import MetricsRegistry, as_telemetry
from repro.serve.amortized import AmortizedModel
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import CacheEntry, ModelRegistry
from repro.serve.schema import (
    DEFAULT_NUM_DRAWS,
    RequestError,
    ServeError,
    derived_seed,
    make_response,
    normalize_request,
)
from repro.serve.workers import RefitPool


@dataclass(frozen=True)
class ServerConfig:
    """Every serving knob in one place (latency, trust, fallback, cache)."""

    #: micro-batcher: flush at this many pending requests ...
    max_batch_size: int = 16
    #: ... or this many milliseconds after the first pending one.
    max_wait_ms: float = 2.0
    #: trust gate: k-hat at or above this flags the guide posterior.
    khat_threshold: float = 0.7
    #: guide draws behind each per-query k-hat estimate.
    khat_draws: int = 512
    #: hard floor forwarded to PSIS (None disables the hard error).
    khat_min_draws: Optional[int] = PSIS_MIN_DRAWS
    #: draws per response when the request does not say.
    default_num_draws: int = DEFAULT_NUM_DRAWS
    #: refit pool bounds and behaviour.
    refit_workers: int = 2
    refit_queue: int = 8
    refit_retries: int = 2
    refit_timeout_s: Optional[float] = None
    refit_backoff_s: float = 0.25
    #: the NUTS fallback fit itself.
    refit_num_warmup: int = 300
    refit_num_samples: int = 300
    refit_seed: int = 0
    refit_checkpoint_every: Optional[int] = None
    refit_checkpoint_dir: Optional[str] = None
    #: how long a ``fallback="wait"`` request blocks on the refit (seconds).
    wait_timeout_s: float = 600.0
    #: per-dataset cache entries kept (LRU).
    cache_entries: int = 256


@dataclass
class _QueryItem:
    """What one request contributes to a coalesced batch."""

    entry: CacheEntry
    num_draws: int
    seed: int
    result: Optional[Dict[str, Any]] = field(default=None)


class PosteriorServer:
    """Serve amortized posteriors: one fit, millions of queries.

    Construct with a trained :class:`AmortizedModel` (registered under its
    own name) or a pre-populated :class:`ModelRegistry`.  ``query`` /
    ``serve_many`` are the synchronous entry points (they drive a dedicated
    event-loop thread, so concurrent ``serve_many`` requests genuinely
    coalesce); ``handle`` is the coroutine for async callers — it bridges
    onto the same dedicated loop, so the micro-batcher only ever runs on
    one loop and async and sync callers coalesce together; the HTTP front
    of :mod:`repro.serve.http` is a thin shim over ``query``.
    """

    def __init__(self, model_or_registry, config: Optional[ServerConfig] = None,
                 *, obs: Any = None):
        self.config = config or ServerConfig()
        if isinstance(model_or_registry, ModelRegistry):
            self.registry = model_or_registry
        elif isinstance(model_or_registry, AmortizedModel):
            self.registry = ModelRegistry(max_entries=self.config.cache_entries)
            self.registry.register(model_or_registry)
        else:
            raise TypeError(
                "PosteriorServer expects an AmortizedModel or a "
                f"ModelRegistry, got {type(model_or_registry).__name__}")
        self.telemetry = as_telemetry(obs)
        self.metrics = self.telemetry.attach_registry("serve", MetricsRegistry())
        self._batcher = MicroBatcher(self._evaluate_batch,
                                     max_batch_size=self.config.max_batch_size,
                                     max_wait_ms=self.config.max_wait_ms,
                                     telemetry=self.telemetry,
                                     metrics=self.metrics)
        self._pool = RefitPool(self._refit_entry,
                               max_workers=self.config.refit_workers,
                               max_queue=self.config.refit_queue,
                               max_retries=self.config.refit_retries,
                               timeout_s=self.config.refit_timeout_s,
                               backoff_s=self.config.refit_backoff_s,
                               telemetry=self.telemetry, metrics=self.metrics)
        #: fused-vs-rows verdict per served model ("fused" | "rows"),
        #: decided on the first multi-request batch.  Keyed by
        #: ``(registry name, id(model))`` — NOT by ``model.name``, which
        #: distinct registered models may share — so a validation verdict
        #: can never be applied to a different model object.
        self._batch_mode: Dict[tuple, str] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._loop_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # the async request path
    # ------------------------------------------------------------------
    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request dict (see :mod:`repro.serve.schema`).

        Every request — this coroutine included — executes on the server's
        dedicated loop thread, so the micro-batcher's pending state is only
        ever touched from one loop and async callers coalesce with the
        synchronous front.  Awaiting ``handle`` from a foreign loop bridges
        the call onto the server loop and awaits the cross-thread result.
        """
        loop = self._ensure_loop()
        if asyncio.get_running_loop() is loop:
            return await self._handle_on_loop(request)
        future = asyncio.run_coroutine_threadsafe(
            self._handle_on_loop(request), loop)
        return await asyncio.wrap_future(future)

    async def _handle_on_loop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The request body proper; runs on the dedicated server loop."""
        start = time.perf_counter()
        self.metrics.inc("serve.requests")
        raw = request if isinstance(request, dict) else {}
        try:
            req = normalize_request(
                request, default_model=self.registry.default_model_name(),
                default_num_draws=self.config.default_num_draws)
        except RequestError as exc:
            self.metrics.inc("serve.request_errors")
            return make_response(request_id=raw.get("request_id"),
                                 model=str(raw.get("model", "?")),
                                 status="error", error=str(exc))
        with self.telemetry.span("serve.request", model=req["model"]):
            try:
                response = await self._handle_normalized(req)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                self.metrics.inc("serve.errors")
                response = make_response(request_id=req["request_id"],
                                         model=req["model"], status="error",
                                         error=f"{type(exc).__name__}: {exc}")
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.inc("serve.responses")
        self.metrics.inc("serve.latency_ms_sum", latency_ms)
        response.setdefault("metadata", {})["latency_ms"] = round(latency_ms, 3)
        return response

    async def _handle_normalized(self, req: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        entry: CacheEntry = await loop.run_in_executor(
            None, self.registry.entry_for, req["model"], req["data"])
        seed = req["seed"]
        if seed is None:
            seed = derived_seed(entry.digest)
        item = _QueryItem(entry=entry, num_draws=req["num_draws"],
                          seed=int(seed))
        result = await self._batcher.submit(item)
        khat = await loop.run_in_executor(None, self._ensure_khat, entry)
        trusted = bool(np.isfinite(khat) and khat < self.config.khat_threshold)
        source, fallback = "guide", "none"
        draws: Dict[str, Any] = result["draws"]
        moments: Optional[Dict[str, Any]] = {"loc": result["loc"],
                                             "scale": result["scale"]}
        if not trusted:
            self.metrics.inc("serve.gated")
            source, fallback, draws, moments = await self._apply_fallback(
                loop, req, entry, draws, moments)
            trusted = source == "nuts"
        # Report the draw count actually shipped: a refit posterior may hold
        # fewer draws than the request asked for (see _refit_draws).
        num_draws = req["num_draws"]
        if draws:
            num_draws = int(np.asarray(next(iter(draws.values()))).shape[0])
        metadata = {
            "data_digest": entry.digest,
            "num_draws": num_draws,
            "num_draws_requested": req["num_draws"],
            "seed": int(seed),
            "batch_size": result["batch_size"],
            "batch_mode": self._batch_mode.get(self._mode_key(entry)),
            "refit_status": entry.refit_status,
        }
        if self.telemetry.enabled:
            metadata["telemetry"] = self.telemetry.digest()
        return make_response(request_id=req["request_id"], model=req["model"],
                             status="ok", source=source, trusted=trusted,
                             khat=khat, fallback=fallback, draws=draws,
                             moments=moments, metadata=metadata)

    async def _apply_fallback(self, loop, req: Dict[str, Any],
                              entry: CacheEntry, draws, moments):
        """Trust-gate routing for an untrusted guide response."""
        mode = req["fallback"]
        if entry.refit_status == "done":
            return ("nuts", "refit",
                    self._refit_draws(entry, req["num_draws"]), None)
        if mode == "none":
            return "guide", "none", draws, moments
        accepted = self._pool.submit(entry)
        if not accepted:
            return "guide", "shed", draws, moments
        if mode == "enqueue":
            return "guide", "pending", draws, moments
        # fallback == "wait": block (off the loop) until the refit lands.
        finished = await loop.run_in_executor(
            None, entry.refit_event.wait, self.config.wait_timeout_s)
        if finished and entry.refit_status == "done":
            return ("nuts", "refit",
                    self._refit_draws(entry, req["num_draws"]), None)
        return "guide", "failed" if finished else "pending", draws, moments

    # ------------------------------------------------------------------
    # batched evaluation (executor thread)
    # ------------------------------------------------------------------
    @staticmethod
    def _mode_key(entry: CacheEntry) -> tuple:
        """The grouping/validation identity of one entry's model.

        The registry name is what requests route by, and ``id(model)``
        pins the exact object (an entry holds a strong reference, so the
        id is stable for its lifetime) — two models that happen to share a
        ``.name``, or a re-registration under an old name, can never share
        a fused group or a validation verdict.
        """
        return (entry.registry_name, id(entry.model))

    def _evaluate_batch(self, items: List[_QueryItem]) -> List[Dict[str, Any]]:
        """One coalesced evaluation; the only place draws are computed.

        Groups items by served model identity (a batch may interleave
        models), runs the stacked fused path per group, and validates the
        first multi-item group bitwise against the per-row reference before
        trusting it.
        """
        self.metrics.inc("serve.batch_evals")
        results: List[Optional[Dict[str, Any]]] = [None] * len(items)
        groups: Dict[tuple, List[int]] = {}
        for index, item in enumerate(items):
            groups.setdefault(self._mode_key(item.entry), []).append(index)
        for key, indices in groups.items():
            group = [items[i] for i in indices]
            mode = self._batch_mode.get(key)
            if len(group) == 1 or mode == "rows":
                outs = [self._evaluate_single(item) for item in group]
            else:
                outs = self._evaluate_fused(group)
                if mode is None:
                    reference = [self._evaluate_single(item) for item in group]
                    if self._bitwise_equal(outs, reference):
                        self._batch_mode[key] = "fused"
                    else:
                        self._batch_mode[key] = "rows"
                        outs = reference
                    registry_name = group[0].entry.registry_name
                    self.metrics.set_info(f"serve.batch_mode.{registry_name}",
                                          self._batch_mode[key])
                    self.telemetry.event("serve.batch_validate",
                                         model=registry_name,
                                         mode=self._batch_mode[key])
            for item_index, out in zip(indices, outs):
                out["batch_size"] = len(items)
                results[item_index] = out
        return results  # type: ignore[return-value]

    @staticmethod
    def _evaluate_single(item: _QueryItem) -> Dict[str, Any]:
        """The per-row reference path — exactly ``query_direct``'s math."""
        model = item.entry.model
        return model.query_direct(features=item.entry.features,
                                  num_draws=item.num_draws, seed=item.seed)

    def _evaluate_fused(self, group: List[_QueryItem]) -> List[Dict[str, Any]]:
        """One stacked guide forward + one stacked constrain for a group."""
        model = group[0].entry.model
        if any(item.entry.model is not model for item in group[1:]):
            raise ServeError(
                "fused batch group mixes distinct model objects — grouping "
                "by model identity is broken (this is a server bug)")
        stacked = np.vstack([item.entry.features for item in group])
        loc, scale = model.moments_for(stacked)          # (B, dim) each
        z_rows = [model.draws_from_moments(loc[i], scale[i],
                                           item.num_draws, item.seed)
                  for i, item in enumerate(group)]
        z_all = np.vstack(z_rows)                        # (sum draws, dim)
        constrained = model.constrain(z_all)
        outs: List[Dict[str, Any]] = []
        offset = 0
        for i, item in enumerate(group):
            stop = offset + item.num_draws
            outs.append({
                "draws": {site: value[offset:stop]
                          for site, value in constrained.items()},
                "loc": loc[i],
                "scale": scale[i],
            })
            offset = stop
        return outs

    @staticmethod
    def _bitwise_equal(outs: Sequence[Dict[str, Any]],
                       reference: Sequence[Dict[str, Any]]) -> bool:
        for out, ref in zip(outs, reference):
            for key in ("loc", "scale"):
                if not np.array_equal(out[key], ref[key], equal_nan=True):
                    return False
            if set(out["draws"]) != set(ref["draws"]):
                return False
            for site, value in out["draws"].items():
                if not np.array_equal(value, ref["draws"][site],
                                      equal_nan=True):
                    return False
        return True

    # ------------------------------------------------------------------
    # trust gate pieces (executor thread)
    # ------------------------------------------------------------------
    def _ensure_khat(self, entry: CacheEntry) -> float:
        """The entry's k-hat, computed once per dataset (cached)."""
        with entry.lock:
            if entry.khat is None:
                khat = entry.model.khat_for(
                    entry.potential, entry.features,
                    num_draws=self.config.khat_draws,
                    seed=derived_seed(entry.digest, salt=0x6B686174),
                    min_draws=self.config.khat_min_draws)
                entry.khat = khat
                self.metrics.inc("serve.khat_scored")
                self.metrics.inc("serve.khat_sum", khat)
                self.metrics.set_info("serve.last_khat", f"{khat:.4f}")
            return entry.khat

    def _refit_entry(self, entry: CacheEntry):
        """The pool's job body: a checkpointed NUTS refit of one dataset."""
        cfg = self.config
        checkpoint_path = None
        if cfg.refit_checkpoint_dir is not None:
            import os

            checkpoint_path = os.path.join(
                cfg.refit_checkpoint_dir,
                f"refit-{entry.registry_name}-{entry.digest[:12]}.ckpt")
        return entry.model.refit(
            entry.data, num_warmup=cfg.refit_num_warmup,
            num_samples=cfg.refit_num_samples, seed=cfg.refit_seed,
            checkpoint_every=cfg.refit_checkpoint_every,
            checkpoint_path=checkpoint_path)

    @staticmethod
    def _refit_draws(entry: CacheEntry, num_draws: int) -> Dict[str, np.ndarray]:
        """The last ``num_draws`` NUTS draws, chains flattened.

        Clamped to what the refit actually produced: a request may ask for
        more draws (up to ``MAX_NUM_DRAWS``) than the refit's
        ``chains * samples``.  The response's ``metadata["num_draws"]``
        reports the shipped count; ``num_draws_requested`` keeps the ask.
        """
        posterior = entry.refit_posterior
        out: Dict[str, np.ndarray] = {}
        for site, value in posterior.draws.items():
            flat = np.reshape(value, (-1,) + value.shape[2:])
            out[site] = flat[-min(num_draws, flat.shape[0]):]
        return out

    # ------------------------------------------------------------------
    # the synchronous front (dedicated loop thread)
    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._loop_lock:
            if self._closed:
                raise RuntimeError("PosteriorServer is closed")
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(target=loop.run_forever,
                                          daemon=True,
                                          name="repro-serve-loop")
                thread.start()
                self._loop, self._loop_thread = loop, thread
            return self._loop

    def submit(self, request: Dict[str, Any]):
        """Submit one request; returns a ``concurrent.futures.Future``."""
        loop = self._ensure_loop()
        return asyncio.run_coroutine_threadsafe(self.handle(request), loop)

    def query(self, request: Dict[str, Any],
              timeout: Optional[float] = None) -> Dict[str, Any]:
        """Answer one request synchronously."""
        return self.submit(request).result(timeout)

    def serve_many(self, requests: Sequence[Dict[str, Any]],
                   timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Answer many requests concurrently (they coalesce in the batcher)."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    def close(self) -> None:
        """Stop the loop thread and the refit pool."""
        with self._loop_lock:
            if self._closed:
                return
            self._closed = True
            loop, thread = self._loop, self._loop_thread
            self._loop = self._loop_thread = None
        self._pool.close(wait=False)
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            loop.close()

    def __enter__(self) -> "PosteriorServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"PosteriorServer(models={self.registry.model_names()}, "
                f"max_batch={self.config.max_batch_size}, "
                f"khat_threshold={self.config.khat_threshold})")
