"""Train-once, query-many amortized posterior models.

"Inference Compilation and Universal Probabilistic Programming" (Le et al.,
2016) amortizes posterior inference in a neural network trained against the
generative model; :class:`AmortizedModel` is that idea as a product surface
over the pieces the pipeline already ships.  :meth:`train` fits one
:class:`~repro.guides.neural.AutoNeural` guide on reference data through the
standard VI engine; afterwards every ``data -> Posterior`` query costs a
feature computation and a single MLP forward (:meth:`query_direct`), and the
micro-batcher of :mod:`repro.serve.batcher` coalesces many such queries onto
one stacked forward.

Two standing assumptions of the amortized contract, both enforced:

* queries must carry data of the same shape as the reference data — the
  feature vector is the network input, so a width mismatch raises (the same
  rule :class:`AutoNeural` applies on re-binding);
* the constraining transforms must not depend on the observed data (the
  usual case: supports declared in the ``parameters`` block), because the
  fused serving path constrains query draws through the *reference*
  potential's transforms.  Data-dependent supports surface as a bad
  per-query k-hat and route to the NUTS fallback instead of silently
  corrupting draws.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.guides.neural import AutoNeural
from repro.infer.importance import PSIS_MIN_DRAWS, psis_khat
from repro.serve.schema import ServeError, canonical_data

_LOG_2PI = math.log(2.0 * math.pi)

#: Serialises every model *evaluation* the serving layer performs from
#: worker threads — per-query potential construction (a traced model run),
#: k-hat scoring (``potential_batched`` walks the model graph) and NUTS
#: refits.  The PPL effect-handler stacks are module-level globals
#: (:mod:`repro.ppl.primitives`), so interleaving two traced runs from two
#: threads would cross their handler frames.  The guide MLP forward and the
#: constraining transforms never enter handler-based evaluation and run
#: lock-free — the serving hot path does not contend with a background
#: refit.
EVAL_LOCK = threading.RLock()


class NotTrainedError(ServeError):
    """The amortized guide has not been trained (or loaded) yet."""


class AmortizedModel:
    """One compiled model + one trained amortized guide, ready to serve.

    Parameters mirror :func:`repro.core.compiler.compile_model` (``source``,
    ``name``, ``scheme``, ``backend``, ``engine``, ``obs``) plus the
    :class:`~repro.guides.neural.AutoNeural` construction arguments
    (``hidden``, ``activation``, ``init_seed``) — everything needed to
    rebuild the guide bit-for-bit from a saved artifact in a fresh process.
    """

    def __init__(self, source: str, *, name: str = "model",
                 scheme: str = "comprehensive", backend: str = "numpyro",
                 engine: Optional[str] = None, hidden=(32,),
                 activation: str = "tanh", init_seed: int = 0,
                 obs: Any = None):
        from repro.core.compiler import compile_model

        self.source = str(source)
        self.name = str(name)
        self.scheme = scheme
        self.backend = backend
        self.engine = engine
        self.hidden = tuple(int(h) for h in hidden)
        self.activation = activation
        self.init_seed = int(init_seed)
        with EVAL_LOCK:
            self._compiled = compile_model(self.source, name=self.name,
                                           scheme=scheme, backend=backend,
                                           engine=engine, obs=obs)
        self.telemetry = self._compiled.telemetry
        self.guide: Optional[AutoNeural] = None
        self.reference_data: Optional[Dict[str, Any]] = None
        self.reference_potential = None
        #: training facts (steps, seed, final ELBO, reference k-hat);
        #: persisted in the artifact sidecar.
        self.training: Dict[str, Any] = {}
        #: shared batched-evaluation tier table: the fast/loop classification
        #: is structural per model (the serving feature-width contract pins
        #: the data shape), so every per-dataset potential adopts this one
        #: store instead of re-running the probe validation — cold datasets
        #: skip the per-dataset classification before their first k-hat.
        self.batched_tiers: Dict[int, str] = {}

    # ------------------------------------------------------------------
    @property
    def trained(self) -> bool:
        return self.guide is not None

    def _require_trained(self) -> None:
        if not self.trained:
            raise NotTrainedError(
                f"AmortizedModel {self.name!r} has no trained guide — call "
                "train(reference_data, ...) or load(...) first")

    @property
    def dim(self) -> int:
        self._require_trained()
        return self.reference_potential.dim

    # ------------------------------------------------------------------
    # the one fit
    # ------------------------------------------------------------------
    def train(self, data: Dict[str, Any], *, num_steps: int = 1500,
              seed: int = 0, learning_rate: Optional[float] = None,
              num_particles: Optional[int] = None, khat_draws: int = 1024,
              khat_min_draws: Optional[int] = PSIS_MIN_DRAWS,
              checkpoint_every: Optional[int] = None,
              checkpoint_path: Optional[str] = None) -> "AmortizedModel":
        """Fit the amortized guide once, on reference data.

        Runs the standard VI engine (``fit("vi", guide=AutoNeural(...))``),
        then scores the fitted guide with a PSIS k-hat on ``khat_draws``
        reference draws so the training record states how well the guide
        covers the posterior it was trained against.  Checkpointing
        parameters pass straight through to the VI engine.
        """
        guide = AutoNeural(hidden=self.hidden, activation=self.activation,
                           init_seed=self.init_seed)
        with EVAL_LOCK:
            conditioned = self._compiled.condition(canonical_data(data))
            vi = conditioned.fit("vi", guide=guide, num_steps=num_steps,
                                 seed=seed, learning_rate=learning_rate,
                                 num_particles=num_particles,
                                 checkpoint_every=checkpoint_every,
                                 checkpoint_path=checkpoint_path)
            psis = vi.psis_diagnostic(num_samples=khat_draws,
                                      min_draws=khat_min_draws)
        self.guide = vi.guide
        self.reference_potential = vi.potential
        # The training k-hat already classified the reference potential's
        # batched tiers; seed the shared store so query potentials inherit
        # the classification instead of re-validating per dataset.
        vi.potential.share_batched_classification(self.batched_tiers)
        self.reference_data = canonical_data(data)
        self.training = {
            "num_steps": int(num_steps),
            "seed": int(seed),
            "elbo_final": (float(np.mean(vi.elbo_history[-10:]))
                           if vi.elbo_history else None),
            "khat": float(psis.khat),
            "khat_draws": int(khat_draws),
        }
        return self

    def bind_trained(self, reference_data: Dict[str, Any],
                     state: Dict[str, np.ndarray],
                     training: Optional[Dict[str, Any]] = None) -> "AmortizedModel":
        """Attach trained guide weights without re-running VI (artifact load).

        Rebuilds the guide against the reference potential (so feature
        widths and latent dims are re-derived from the model, not trusted
        from the artifact) and then overwrites the freshly initialised
        network with ``state``.
        """
        guide = AutoNeural(hidden=self.hidden, activation=self.activation,
                           init_seed=self.init_seed)
        with EVAL_LOCK:
            conditioned = self._compiled.condition(canonical_data(reference_data))
            potential = conditioned.potential(0)
            guide.setup(potential)
        guide.net.load_state_dict(state)
        self.guide = guide
        self.reference_potential = potential
        potential.share_batched_classification(self.batched_tiers)
        self.reference_data = canonical_data(reference_data)
        self.training = dict(training or {})
        return self

    # ------------------------------------------------------------------
    # per-query pieces (the registry caches these per data digest)
    # ------------------------------------------------------------------
    def potential_for(self, data: Dict[str, Any]):
        """A fresh :class:`~repro.infer.Potential` over query data.

        The fresh potential adopts the model-wide batched-tier store, so a
        cold dataset's first batched evaluation (the per-query k-hat's 512
        density rows) reuses the classification instead of paying the
        probe-validation row loop.
        """
        with EVAL_LOCK:
            potential = self._compiled.condition(
                canonical_data(data)).potential(0)
        potential.share_batched_classification(self.batched_tiers)
        return potential

    def features_for(self, potential) -> np.ndarray:
        """The guide's ``(1, F)`` feature row for a query potential.

        Width mismatches (query data shaped unlike the reference data)
        raise :class:`ServeError` — the amortized guide cannot answer them.
        """
        self._require_trained()
        with EVAL_LOCK:
            x = AutoNeural.features_for(potential)
        expected = self.guide._x.shape[1]
        if x.shape[1] != expected:
            raise ServeError(
                f"query data yields {x.shape[1]} observed features but the "
                f"guide was trained on {expected} — amortized serving "
                "requires same-shaped data")
        return x

    def moments_for(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Guide ``(loc, scale)`` for a ``(B, F)`` feature stack (no grad)."""
        self._require_trained()
        return self.guide.batched_moments(features)

    @staticmethod
    def draws_from_moments(loc: np.ndarray, scale: np.ndarray,
                           num_draws: int, seed: int) -> np.ndarray:
        """Unconstrained guide draws for one query's ``(dim,)`` moments.

        The RNG is seeded per request, so a draw never depends on which
        batch the request was coalesced into.
        """
        rng = np.random.default_rng(int(seed))
        eps = rng.standard_normal((int(num_draws), loc.shape[-1]))
        return loc + scale * eps

    def constrain(self, z: np.ndarray) -> Dict[str, np.ndarray]:
        """Map ``(N, dim)`` unconstrained draws to constrained site values."""
        self._require_trained()
        return self.reference_potential.constrained_dict_batched(z)

    def khat_for(self, potential, features: np.ndarray, *,
                 num_draws: int = 512, seed: int = 0,
                 min_draws: Optional[int] = PSIS_MIN_DRAWS) -> float:
        """Per-query PSIS k-hat of the guide against the query joint.

        Importance ratios ``log p_query(z) - log q(z | features)`` over
        ``num_draws`` fresh guide draws; this is the trust-gate score every
        response carries.  Deterministic for a fixed ``seed`` (the server
        derives it from the data digest), so one dataset has one k-hat.
        """
        self._require_trained()
        loc, scale = self.moments_for(np.atleast_2d(features))
        loc, scale = loc[0], scale[0]
        rng = np.random.default_rng(int(seed))
        z = loc + scale * rng.standard_normal((int(num_draws), loc.shape[-1]))
        with EVAL_LOCK:
            neg_logp = potential.potential_batched(z)
        resid = (z - loc) / scale
        log_q = (-0.5 * np.sum(resid * resid, axis=-1)
                 - float(np.sum(np.log(scale)))
                 - 0.5 * loc.shape[-1] * _LOG_2PI)
        return float(psis_khat((-neg_logp) - log_q, min_draws=min_draws))

    # ------------------------------------------------------------------
    # the unbatched reference path
    # ------------------------------------------------------------------
    def query_direct(self, data: Optional[Dict[str, Any]] = None, *,
                     features: Optional[np.ndarray] = None,
                     num_draws: int = 64, seed: int = 0) -> Dict[str, Any]:
        """Answer one query without the server: the bitwise reference.

        This is exactly the per-request arithmetic of the micro-batcher's
        fused path restricted to a batch of one — the serving acceptance
        contract is that instrumented server responses match this output
        bit for bit.  Returns ``{"draws", "loc", "scale"}`` with numpy
        arrays (draws in constrained space).
        """
        self._require_trained()
        if features is None:
            if data is None:
                raise ValueError("query_direct needs data= or features=")
            features = self.features_for(self.potential_for(data))
        loc, scale = self.moments_for(np.atleast_2d(features))
        loc, scale = loc[0], scale[0]
        z = self.draws_from_moments(loc, scale, num_draws, seed)
        draws = self.constrain(z)
        return {"draws": draws, "loc": loc, "scale": scale}

    # ------------------------------------------------------------------
    # the trusted fallback
    # ------------------------------------------------------------------
    def refit(self, data: Dict[str, Any], *, num_warmup: int = 300,
              num_samples: int = 300, num_chains: int = 1, seed: int = 0,
              checkpoint_every: Optional[int] = None,
              checkpoint_path: Optional[str] = None):
        """A real (checkpointed) NUTS fit on query data — the trust fallback.

        Returns the :class:`~repro.infer.results.Posterior`.  Runs under
        :data:`EVAL_LOCK` on a background worker
        (:class:`repro.serve.workers.RefitPool`); checkpointing means a
        killed worker resumes instead of restarting.
        """
        with EVAL_LOCK:
            fit = self._compiled.condition(canonical_data(data)).fit(
                "nuts", num_warmup=num_warmup, num_samples=num_samples,
                num_chains=num_chains, seed=seed,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path)
        return fit.posterior

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Persist the trained guide (see :mod:`repro.serve.artifacts`)."""
        from repro.serve.artifacts import save_amortized

        return save_amortized(self, path)

    @classmethod
    def load(cls, path: str, *, obs: Any = None) -> "AmortizedModel":
        """Rebuild a trained model from a saved artifact (fresh process OK)."""
        from repro.serve.artifacts import load_amortized

        return load_amortized(path, obs=obs)

    def __repr__(self) -> str:
        state = "trained" if self.trained else "untrained"
        return (f"AmortizedModel(name={self.name!r}, {state}, "
                f"hidden={self.hidden}, scheme={self.scheme!r})")
