"""A thin stdlib HTTP front over :class:`~repro.serve.server.PosteriorServer`.

The serving layer is transport-agnostic (plain-dict requests and
responses); this module is the optional wire adapter: ``POST /v1/query``
with a JSON request body returns the JSON response dict, ``GET /v1/health``
reports the registered models and the live metrics counters.  Built on
``http.server.ThreadingHTTPServer`` — no dependencies, good enough for the
example and for single-host deployments; anything heavier should mount
:meth:`PosteriorServer.query` behind its own transport.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.serve.server import PosteriorServer

#: Request body cap — a posterior query carries a data dict, not a payload.
MAX_BODY_BYTES = 8 * 1024 * 1024


def make_handler(server: PosteriorServer):
    """The request-handler class bound to one :class:`PosteriorServer`."""

    class ServingHTTPHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: quiet by default: serving telemetry lives in the metrics
        #: registry and trace log, not on stderr.
        verbose = False

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            if self.verbose:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, default=float).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
            if self.path != "/v1/health":
                self._reply(404, {"status": "error",
                                  "error": f"unknown path {self.path!r}"})
                return
            self._reply(200, {
                "status": "ok",
                "models": server.registry.model_names(),
                "metrics": server.metrics.snapshot(),
            })

        def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
            if self.path != "/v1/query":
                self._reply(404, {"status": "error",
                                  "error": f"unknown path {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            if not 0 < length <= MAX_BODY_BYTES:
                self._reply(413 if length else 400,
                            {"status": "error",
                             "error": f"body length {length} out of range"})
                return
            try:
                request = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._reply(400, {"status": "error",
                                  "error": f"invalid JSON body: {exc}"})
                return
            response = server.query(request)
            self._reply(200 if response.get("status") == "ok" else 400,
                        response)

    return ServingHTTPHandler


def start_http(server: PosteriorServer, host: str = "127.0.0.1",
               port: int = 0) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Serve ``server`` over HTTP on a daemon thread; returns (httpd, thread).

    ``port=0`` binds an ephemeral port — read it back from
    ``httpd.server_address``.  Shut down with ``httpd.shutdown()``.
    """
    httpd = ThreadingHTTPServer((host, port), make_handler(server))
    thread = threading.Thread(target=httpd.serve_forever, daemon=True,
                              name="repro-serve-http")
    thread.start()
    return httpd, thread
