"""The :class:`Tensor` class: a NumPy array with a recorded computation graph.

The design follows the classic reverse-mode tape approach: every operation
returns a new :class:`Tensor` holding references to its parent tensors and a
list of backward closures, one per parent, mapping the upstream gradient to
the contribution for that parent.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients into ``.grad``.

Broadcasting is handled uniformly by :func:`unbroadcast`, which sums the
upstream gradient over broadcast dimensions so that ``parent.grad`` always has
the parent's shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, int, bool, list, tuple, np.ndarray, "Tensor"]

_GRAD_ENABLED = [True]


def is_grad_enabled() -> bool:
    """Return whether operations currently record the computation graph."""
    return _GRAD_ENABLED[-1]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting may have expanded a parent of shape ``shape`` up to the
    shape of ``grad``; the adjoint of broadcasting is summation over the
    broadcast axes.
    """
    grad = np.asarray(grad, dtype=float)
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array.

    Parameters
    ----------
    data:
        Anything convertible to a ``float`` NumPy array.
    requires_grad:
        If ``True`` the tensor is a leaf with respect to which gradients are
        requested.
    parents:
        The tensors this node was computed from (internal).
    backward_fns:
        One closure per parent mapping the upstream gradient (an ``ndarray``
        with this node's shape) to the gradient contribution for that parent
        (internal).
    name:
        Optional debugging name.
    """

    # ``is_batched`` marks tensors that carry a leading chain axis during
    # vectorized multi-chain evaluation (see repro.infer.potential).  The slot
    # is left unassigned unless a batched evaluation sets it, so ordinary
    # tensors pay no cost: read it with ``getattr(t, "is_batched", False)``.
    # ``enum_elements`` marks an enumerated array-site value whose elements
    # are represented by distinct leaf tensors (the factorized enumeration
    # engine's dependency-analysis substitution; see repro.enum.factorize):
    # the runtime's ``_index`` helper returns the per-element leaf so the
    # autodiff graph records *which element* each log-prob term touched.
    # ``op``/``op_ctx`` are set only while the tape compiler's tracing sink is
    # active (see repro.autodiff.compile): the op name and its static
    # parameters, enough to re-emit the node as a line of generated code.
    __slots__ = ("data", "requires_grad", "grad", "parents", "backward_fns", "name",
                 "is_batched", "enum_elements", "op", "op_ctx")

    __array_priority__ = 100.0  # make np_scalar * Tensor dispatch to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fns: Sequence[Callable[[np.ndarray], np.ndarray]] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        if is_grad_enabled():
            self.parents: Tuple["Tensor", ...] = tuple(parents)
            self.backward_fns: Tuple[Callable, ...] = tuple(backward_fns)
        else:
            self.parents = ()
            self.backward_fns = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        from repro.autodiff.ops import transpose

        return transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # autodiff
    # ------------------------------------------------------------------
    def _requires_graph(self) -> bool:
        # Iterative DAG walk with a visited set: graphs with heavy sharing
        # (e.g. an HMM forward recurrence) have exponentially many *paths*,
        # so the naive recursive any() is intractable on them.
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.requires_grad:
                return True
            stack.extend(node.parents)
        return False

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to 1 for scalar outputs.  Gradients are accumulated
        into the ``.grad`` attribute of every tensor in the graph that has
        ``requires_grad=True``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=float)

        order = _topological_order(self)
        grads = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                if node.grad is None:
                    node.grad = np.zeros_like(node.data)
                node.grad = node.grad + unbroadcast(node_grad, node.data.shape)
            for parent, fn in zip(node.parents, node.backward_fns):
                if fn is None:
                    continue
                contrib = fn(node_grad)
                if contrib is None:
                    continue
                contrib = unbroadcast(contrib, parent.data.shape)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contrib
                else:
                    grads[key] = contrib

    # ------------------------------------------------------------------
    # operator overloads (dispatch to repro.autodiff.ops)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import add

        return add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import sub

        return sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import sub

        return sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import mul

        return mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import div

        return div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import div

        return div(other, self)

    def __pow__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import pow_

        return pow_(self, other)

    def __rpow__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import pow_

        return pow_(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autodiff.ops import neg

        return neg(self)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import matmul

        return matmul(self, other)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff.ops import matmul

        return matmul(other, self)

    def __getitem__(self, idx) -> "Tensor":
        from repro.autodiff.ops import getitem

        return getitem(self, idx)

    # comparisons return plain boolean arrays (they are not differentiable)
    def __lt__(self, other: ArrayLike):
        return self.data < _raw(other)

    def __le__(self, other: ArrayLike):
        return self.data <= _raw(other)

    def __gt__(self, other: ArrayLike):
        return self.data > _raw(other)

    def __ge__(self, other: ArrayLike):
        return self.data >= _raw(other)

    def __eq__(self, other):  # type: ignore[override]
        return self.data == _raw(other)

    def __ne__(self, other):  # type: ignore[override]
        return self.data != _raw(other)

    def __hash__(self) -> int:  # identity hashing despite __eq__
        return id(self)

    def __float__(self) -> float:
        return float(self.data)

    def __int__(self) -> int:
        return int(self.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def __iter__(self):
        for i in range(self.shape[0]):
            yield self[i]

    # ------------------------------------------------------------------
    # convenience methods mirroring the ops module
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff.ops import sum_

        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff.ops import mean

        return mean(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from repro.autodiff.ops import exp

        return exp(self)

    def log(self) -> "Tensor":
        from repro.autodiff.ops import log

        return log(self)

    def sqrt(self) -> "Tensor":
        from repro.autodiff.ops import sqrt

        return sqrt(self)

    def reshape(self, *shape) -> "Tensor":
        from repro.autodiff.ops import reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def flatten(self) -> "Tensor":
        return self.reshape((-1,))


def _raw(x: ArrayLike) -> np.ndarray:
    if isinstance(x, Tensor):
        return x.data
    return np.asarray(x)


def as_tensor(x: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``x`` to a :class:`Tensor` (no copy if already a tensor)."""
    if isinstance(x, Tensor):
        return x
    return Tensor(x, requires_grad=requires_grad)


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return nodes reachable from ``root`` in reverse topological order."""
    visited = set()
    order: List[Tensor] = []
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node.parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order
