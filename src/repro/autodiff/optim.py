"""Optimisers for variational inference (SGD, Adam).

Both operate on a list of :class:`~repro.autodiff.tensor.Tensor` parameters:
after ``loss.backward()`` has populated ``.grad`` fields, calling ``step()``
updates parameter data in place and ``zero_grad()`` clears gradients for the
next iteration, following the PyTorch optimiser protocol that Pyro's SVI
loop assumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def add_param(self, param: Tensor) -> None:
        """Register a parameter created lazily (e.g. by a ``param`` site)."""
        if all(param is not p for p in self.params):
            self.params.append(param)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v - self.lr * p.grad
                self._velocity[id(p)] = v
                p.data = p.data + v
            else:
                p.data = p.data - self.lr * p.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            key = id(p)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            t = self._t.get(key, 0) + 1
            m = self.beta1 * m + (1 - self.beta1) * p.grad
            v = self.beta2 * v + (1 - self.beta2) * (p.grad * p.grad)
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self._m[key] = m
            self._v[key] = v
            self._t[key] = t


class ClippedAdam(Adam):
    """Adam with gradient-norm clipping (Pyro's default SVI optimiser)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3, clip_norm: float = 10.0, **kwargs) -> None:
        super().__init__(params, lr=lr, **kwargs)
        self.clip_norm = clip_norm

    def step(self) -> None:
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = np.sqrt(total)
        if norm > self.clip_norm and norm > 0:
            scale = self.clip_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale
        super().step()
