"""Minimal neural-network modules (PyTorch ``nn`` substitute).

The DeepStan ``networks`` block (§5.2/5.3 of the paper) imports neural
networks written with the PyTorch API.  This module provides the small subset
needed for the paper's deep probabilistic models: ``Linear`` layers,
activations, ``Sequential`` containers, and a ``Module`` base class exposing
``named_parameters`` — the same interface that ``pyro.random_module`` relies
on for lifting network parameters to random variables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, as_tensor


class Module:
    """Base class for neural-network modules.

    Parameters are :class:`Tensor` attributes with ``requires_grad=True``;
    sub-modules are discovered through instance attributes, mirroring the
    PyTorch convention.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()

    def register_parameter(self, name: str, value: Tensor) -> Tensor:
        value.requires_grad = True
        value.name = name
        self._parameters[name] = value
        return value

    def add_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name, value):
        if isinstance(value, Module) and name not in ("_parameters", "_modules"):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted.name, parameter)`` pairs, PyTorch-style."""
        for name, param in self._parameters.items():
            yield (prefix + name if not prefix else f"{prefix}.{name}", param)
        for mod_name, module in self._modules.items():
            sub_prefix = mod_name if not prefix else f"{prefix}.{mod_name}"
            yield from module.named_parameters(sub_prefix)

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name in state:
                p.data = np.asarray(state[name], dtype=float).reshape(p.data.shape)

    def set_parameter(self, dotted_name: str, value) -> None:
        """Replace a (possibly nested) parameter value, keeping the graph.

        Used by ``random_module`` to substitute sampled weights for the
        registered parameters before running the forward pass.
        """
        parts = dotted_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        leaf = parts[-1]
        value = as_tensor(value)
        module._parameters[leaf] = value
        object.__setattr__(module, leaf, value)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with Glorot-uniform initialisation.

    ``zero_init=True`` starts the layer at the zero map — used as the output
    layer of amortized guides so the initial variational distribution is
    data-independent (a standard Gaussian) regardless of the network input.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None,
                 zero_init: bool = False) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        bound = np.sqrt(6.0 / (in_features + out_features))
        if zero_init:
            weight = Tensor(np.zeros((out_features, in_features)))
        else:
            weight = Tensor(rng.uniform(-bound, bound, size=(out_features, in_features)))
        self.weight = self.register_parameter("weight", weight)
        self.in_features = in_features
        self.out_features = out_features
        if bias:
            self.bias = self.register_parameter("bias", Tensor(np.zeros(out_features)))
        else:
            self.bias = None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        out = ops.matmul(x, ops.transpose(self._parameters["weight"]))
        if "bias" in self._parameters:
            out = ops.add(out, self._parameters["bias"])
        return out


class ReLU(Module):
    def forward(self, x) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    def forward(self, x) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    def forward(self, x) -> Tensor:
        return ops.sigmoid(x)


class Softplus(Module):
    def forward(self, x) -> Tensor:
        return ops.softplus(x)


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for i, module in enumerate(modules):
            self.add_module(str(i), module)
            self._ordered.append(module)

    def forward(self, x) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    Mirrors the two-layer perceptron used by the paper's Bayesian-MLP
    experiment (``mlp.l1``, ``mlp.l2``), so the DeepStan parameter paths
    (``mlp.l1.weight`` etc.) resolve naturally.
    """

    def __init__(self, sizes: List[int], activation: str = "tanh",
                 rng: Optional[np.random.Generator] = None,
                 zero_init_last: bool = False) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.sizes = list(sizes)
        self.activation = activation
        for i in range(len(sizes) - 1):
            is_last = i == len(sizes) - 2
            layer = Linear(sizes[i], sizes[i + 1], rng=rng,
                           zero_init=zero_init_last and is_last)
            self.add_module(f"l{i + 1}", layer)
            object.__setattr__(self, f"l{i + 1}", layer)

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "tanh":
            return ops.tanh(x)
        if self.activation == "relu":
            return ops.relu(x)
        if self.activation == "sigmoid":
            return ops.sigmoid(x)
        raise ValueError(f"unknown activation {self.activation!r}")

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        n_layers = len(self.sizes) - 1
        for i in range(n_layers):
            x = self._modules[f"l{i + 1}"](x)
            if i < n_layers - 1:
                x = self._activate(x)
        return x
