"""Differentiable operations on :class:`~repro.autodiff.tensor.Tensor`.

Each function accepts tensors or plain array-likes, computes the forward value
with NumPy, and (when graph recording is enabled) attaches backward closures
implementing the vector-Jacobian product for each input.

The operator set is chosen to cover what the Stan standard library, the
distribution library, the constraint transforms and the neural-network modules
need; it is intentionally not a full PyTorch clone.

Every node also carries an *op name* and a tuple of static parameters while
the tape compiler's tracing sink is active (``_TRACE_SINK``; see
:mod:`repro.autodiff.compile`): one traced evaluation is enough to lower the
recorded graph into straight-line NumPy code, because this module is the
single place result tensors are constructed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import special as sps

from repro.autodiff.tensor import ArrayLike, Tensor, as_tensor, is_grad_enabled

#: when not ``None``, a list collecting every tensor built by :func:`_make`
#: (the tape compiler's recording hook — set via ``ops._TRACE_SINK = [...]``).
_TRACE_SINK: Optional[list] = None


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward_fns: Sequence,
    op: Optional[str] = None,
    ctx: Tuple = (),
) -> Tensor:
    """Create a result tensor, recording the graph only when enabled."""
    if not is_grad_enabled():
        return Tensor(data)
    out = Tensor(data, parents=parents, backward_fns=backward_fns)
    if _TRACE_SINK is not None:
        out.op = op
        out.op_ctx = ctx
        _TRACE_SINK.append(out)
    return out


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _make(a.data + b.data, (a, b), (lambda g: g, lambda g: g), "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _make(a.data - b.data, (a, b), (lambda g: g, lambda g: -g), "sub")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _make(
        a.data * b.data,
        (a, b),
        (lambda g: g * b.data, lambda g: g * a.data),
        "mul",
    )


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _make(
        a.data / b.data,
        (a, b),
        (
            lambda g: g / b.data,
            lambda g: -g * a.data / (b.data * b.data),
        ),
        "div",
    )


def neg(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return _make(-a.data, (a,), (lambda g: -g,), "neg")


def pow_(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data ** b.data

    def grad_a(g):
        return g * b.data * a.data ** (b.data - 1.0)

    def grad_b(g):
        with np.errstate(divide="ignore", invalid="ignore"):
            loga = np.where(a.data > 0, np.log(np.where(a.data > 0, a.data, 1.0)), 0.0)
        return g * out * loga

    return _make(out, (a, b), (grad_a, grad_b), "pow")


def square(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return _make(a.data * a.data, (a,), (lambda g: 2.0 * g * a.data,), "square")


def abs_(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return _make(np.abs(a.data), (a,), (lambda g: g * np.sign(a.data),), "abs")


# ----------------------------------------------------------------------
# elementwise transcendental functions
# ----------------------------------------------------------------------
def exp(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)
    return _make(out, (a,), (lambda g: g * out,), "exp")


def expm1(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.expm1(a.data)
    return _make(out, (a,), (lambda g: g * np.exp(a.data),), "expm1")


def log(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.log(a.data)
    return _make(out, (a,), (lambda g: g / a.data,), "log")


def log1p(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.log1p(a.data)
    return _make(out, (a,), (lambda g: g / (1.0 + a.data),), "log1p")


def sqrt(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return _make(out, (a,), (lambda g: g * 0.5 / out,), "sqrt")


def sin(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return _make(np.sin(a.data), (a,), (lambda g: g * np.cos(a.data),), "sin")


def cos(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return _make(np.cos(a.data), (a,), (lambda g: -g * np.sin(a.data),), "cos")


def tanh(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)
    return _make(out, (a,), (lambda g: g * (1.0 - out * out),), "tanh")


def sigmoid(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = sps.expit(a.data)
    return _make(out, (a,), (lambda g: g * out * (1.0 - out),), "sigmoid")


def softplus(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.logaddexp(0.0, a.data)
    return _make(out, (a,), (lambda g: g * sps.expit(a.data),), "softplus")


def relu(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    return _make(np.where(mask, a.data, 0.0), (a,), (lambda g: g * mask,), "relu")


def lgamma(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = sps.gammaln(a.data)
    return _make(out, (a,), (lambda g: g * sps.digamma(a.data),), "lgamma")


def digamma(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = sps.digamma(a.data)
    return _make(out, (a,), (lambda g: g * sps.polygamma(1, a.data),), "digamma")


def erf(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = sps.erf(a.data)
    coef = 2.0 / np.sqrt(np.pi)
    return _make(out, (a,), (lambda g: g * coef * np.exp(-a.data * a.data),), "erf")


def erfc(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = sps.erfc(a.data)
    coef = 2.0 / np.sqrt(np.pi)
    return _make(out, (a,), (lambda g: -g * coef * np.exp(-a.data * a.data),), "erfc")


# ----------------------------------------------------------------------
# comparisons / selection (gradients flow through the selected values only)
# ----------------------------------------------------------------------
def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data <= b.data
    return _make(
        np.minimum(a.data, b.data),
        (a, b),
        (lambda g: g * mask, lambda g: g * (~mask)),
        "minimum",
    )


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data >= b.data
    return _make(
        np.maximum(a.data, b.data),
        (a, b),
        (lambda g: g * mask, lambda g: g * (~mask)),
        "maximum",
    )


def clip(a: ArrayLike, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)
    mask = (a.data >= lo) & (a.data <= hi)
    return _make(np.clip(a.data, lo, hi), (a,), (lambda g: g * mask,), "clip", (lo, hi))


def where(cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    cond_arr = cond.data if isinstance(cond, Tensor) else np.asarray(cond)
    cond_arr = cond_arr.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    return _make(
        np.where(cond_arr, a.data, b.data),
        (a, b),
        (lambda g: g * cond_arr, lambda g: g * (~cond_arr)),
        "where",
        (cond_arr,),
    )


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum_(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g, dtype=float)
        if axis is None:
            return np.broadcast_to(g, a.data.shape).copy()
        if not keepdims:
            g = np.expand_dims(g, axis)
        return np.broadcast_to(g, a.data.shape).copy()

    return _make(out, (a,), (backward,), "sum", (axis, keepdims))


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[ax] for ax in axis])) if axis else 1
    else:
        count = a.data.shape[axis]

    def backward(g):
        g = np.asarray(g, dtype=float) / count
        if axis is None:
            return np.broadcast_to(g, a.data.shape).copy()
        if not keepdims:
            g = np.expand_dims(g, axis)
        return np.broadcast_to(g, a.data.shape).copy()

    return _make(out, (a,), (backward,), "mean", (axis, keepdims, count))


def logsumexp(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = sps.logsumexp(a.data, axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g, dtype=float)
        lse = out
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
            lse = np.expand_dims(lse, axis)
        return g * np.exp(a.data - lse)

    return _make(np.asarray(out), (a,), (backward,), "logsumexp", (axis, keepdims))


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        g = np.asarray(g, dtype=float)
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return _make(out, (a,), (backward,), "softmax", (axis,))


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    soft = np.exp(out)

    def backward(g):
        g = np.asarray(g, dtype=float)
        return g - soft * g.sum(axis=axis, keepdims=True)

    return _make(out, (a,), (backward,), "log_softmax", (axis,))


def cumsum(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    out = np.cumsum(a.data, axis=axis)

    def backward(g):
        g = np.asarray(g, dtype=float)
        return np.flip(np.cumsum(np.flip(g, axis=axis), axis=axis), axis=axis)

    return _make(out, (a,), (backward,), "cumsum", (axis,))


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def grad_a(g):
        g = np.asarray(g, dtype=float)
        if b.data.ndim == 1 and a.data.ndim == 1:
            return g * b.data
        if b.data.ndim == 1:
            return np.outer(g, b.data) if a.data.ndim == 2 else g[..., None] * b.data
        if a.data.ndim == 1:
            return g @ b.data.T if g.ndim else b.data @ g
        return g @ np.swapaxes(b.data, -1, -2)

    def grad_b(g):
        g = np.asarray(g, dtype=float)
        if a.data.ndim == 1 and b.data.ndim == 1:
            return g * a.data
        if a.data.ndim == 1:
            return np.outer(a.data, g) if b.data.ndim == 2 else a.data[..., None] * g
        if b.data.ndim == 1:
            return np.swapaxes(a.data, -1, -2) @ g
        return np.swapaxes(a.data, -1, -2) @ g

    return _make(out, (a, b), (grad_a, grad_b), "matmul")


def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Inner product of two vectors."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.dot(a.data, b.data)
    return _make(out, (a, b), (lambda g: g * b.data, lambda g: g * a.data), "dot")


def outer(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.outer(a.data, b.data)
    return _make(
        out,
        (a, b),
        (lambda g: g @ b.data, lambda g: a.data @ g),
        "outer",
    )


def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)

    def backward(g):
        g = np.asarray(g, dtype=float)
        if axes is None:
            return np.transpose(g)
        inverse = np.argsort(axes)
        return np.transpose(g, inverse)

    return _make(out, (a,), (backward,), "transpose", (axes,))


# ----------------------------------------------------------------------
# shape manipulation / indexing
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)
    return _make(out, (a,), (lambda g: np.asarray(g).reshape(a.data.shape),),
                 "reshape", (shape,))


def concatenate(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    arrays = [np.atleast_1d(t.data) for t in tensors]
    out = np.concatenate(arrays, axis=axis)
    sizes = [arr.shape[axis] for arr in arrays]
    offsets = np.cumsum([0] + sizes)

    def make_backward(i):
        def backward(g):
            g = np.asarray(g, dtype=float)
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            piece = g[tuple(sl)]
            return piece.reshape(tensors[i].data.shape)

        return backward

    return _make(out, tensors, [make_backward(i) for i in range(len(tensors))],
                 "concatenate", (axis, tuple(int(o) for o in offsets)))


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_backward(i):
        def backward(g):
            g = np.asarray(g, dtype=float)
            return np.take(g, i, axis=axis)

        return backward

    return _make(out, tensors, [make_backward(i) for i in range(len(tensors))],
                 "stack", (axis,))


def getitem(a: ArrayLike, idx) -> Tensor:
    a = as_tensor(a)
    raw_idx = idx.data.astype(int) if isinstance(idx, Tensor) else idx
    if isinstance(raw_idx, tuple):
        raw_idx = tuple(
            i.data.astype(int) if isinstance(i, Tensor) else i for i in raw_idx
        )
    out = a.data[raw_idx]

    def backward(g):
        g = np.asarray(g, dtype=float)
        full = np.zeros_like(a.data)
        np.add.at(full, raw_idx, g)
        return full

    return _make(out, (a,), (backward,), "getitem", (raw_idx,))


def index_update(a: ArrayLike, idx, value: ArrayLike) -> Tensor:
    """Functional index assignment: return a copy of ``a`` with ``a[idx] = value``.

    Used by the compiled code for array-cell assignments inside loops, where
    in-place mutation would corrupt the autodiff graph (mirrors
    ``jax.ops.index_update`` / the explicit copies mentioned in §4).
    """
    a, value = as_tensor(a), as_tensor(value)
    raw_idx = idx.data.astype(int) if isinstance(idx, Tensor) else idx
    if isinstance(raw_idx, tuple):
        raw_idx = tuple(
            i.data.astype(int) if isinstance(i, Tensor) else i for i in raw_idx
        )
    out = a.data.copy()
    out[raw_idx] = value.data

    def grad_a(g):
        g = np.asarray(g, dtype=float).copy()
        g[raw_idx] = 0.0
        return g

    def grad_value(g):
        g = np.asarray(g, dtype=float)
        return g[raw_idx]

    return _make(out, (a, value), (grad_a, grad_value), "index_update", (raw_idx,))
