"""Tape compilation: lower one recorded evaluation to straight-line NumPy.

The interpreted engine replays a Python-object graph on every density
evaluation — each op pays for tensor wrapping, closure allocation, a
topological sort and dict-based gradient accumulation.  For the potential
functions the samplers hammer (thousands of gradient evaluations per fit)
that interpreter tax dominates the actual numerical work.

This module removes it.  :func:`compile_tape` runs the target function once
with a *tracing sink* installed in :mod:`repro.autodiff.ops` (the single
place graph nodes are constructed), so every node records its op name and
static parameters.  The recorded graph is then lowered into one generated
Python function of batched NumPy calls:

* **dead-node elimination** — only nodes reachable from the output are kept
  (side computations of the traced run disappear);
* **constant folding** — every node that does not depend on the input vector
  is baked into a constant (data-only subgraphs — observed-value transforms,
  loop-built index tables — collapse into arrays captured at compile time);
* **fusion** — single-use elementwise intermediates are inlined into their
  consumer expression, so chains like ``-((x - mu) / sigma) ** 2 / 2``
  become one line instead of five temporaries;
* **hand-derived reverse program** — the backward pass is emitted as
  straight-line code textually mirroring the interpreted VJP closures, in
  the interpreter's exact traversal and accumulation order, so results are
  bitwise identical to the interpreted tape (gradient contributions are
  reduced with the same :func:`~repro.autodiff.tensor.unbroadcast`, skipped
  statically where the traced shapes prove it is the identity).

The compiled program freezes the traced control flow, so it is only valid
for inputs with the trace's shape and dtype — :class:`CompiledTape.matches`
is the guard callers must check, recompiling (and revalidating) on mismatch.
Value-dependent branches that change *shape* invalidate the program through
that guard; the first-call validation contract in
:mod:`repro.infer.potential` covers the rest.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special as sps

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, _topological_order, unbroadcast


class TapeCompilationError(RuntimeError):
    """Raised when a recorded tape cannot be lowered to generated code."""


#: hard cap on the number of dynamic nodes lowered into one function —
#: beyond this the generated source itself becomes the bottleneck.
MAX_PROGRAM_NODES = 200_000

#: expressions longer than this are materialized instead of inlined, keeping
#: generated lines readable and CPython's parser happy.
MAX_INLINE_LEN = 300

_ERF_COEF = 2.0 / np.sqrt(np.pi)


def _lse(a, axis=None, keepdims=False):
    """``scipy.special.logsumexp`` (real, unweighted) without dispatch overhead.

    The interpreted tape calls :func:`scipy.special.logsumexp`, whose
    array-API wrapper costs tens of microseconds per call — on scalar-heavy
    tapes (one ``log_sum_exp`` per observation) that dominates the whole
    evaluation.  This mirrors the exact operation sequence of scipy's
    ``_logsumexp`` for real unweighted input, so results are bitwise
    identical (the first-call validation contract checks, and demotes the
    tape if a scipy upgrade ever changes the algorithm).
    """
    a = np.asarray(a)
    ax = tuple(range(a.ndim)) if axis is None else axis
    a_max = np.maximum.reduce(a, axis=ax, keepdims=True)
    mask = a == a_max
    # ``np.add.reduce`` is what np.sum dispatches to — same result, less
    # wrapper overhead.  The negative-weight guards of scipy's general code
    # (``s < -1`` wrap, ``abs(m)``) are identities for unweighted real input
    # and are elided; ``m`` is the max-element multiplicity, always >= 1.
    s = np.add.reduce(np.exp(np.where(mask, -np.inf, a) - a_max),
                      axis=ax, keepdims=True)
    m = np.add.reduce(mask.astype(a.dtype), axis=ax, keepdims=True)
    s = np.where(s == 0, s, s / m)
    out = np.log1p(s) + np.log(m) + a_max
    finite = np.isfinite(out)
    if not finite.all():
        out_inf = np.log(np.add.reduce(np.exp(a), axis=ax, keepdims=True))
        out = np.where(finite, out, out_inf)
    if not keepdims:
        out = np.squeeze(out, axis=ax)
    return out[()] if out.ndim == 0 else out

_VAR_TOKEN = re.compile(r"\b(?:[vgmt]\d+|gz|z|grad)\b")


def _lit(x) -> str:
    """Render a static op parameter as a Python source literal."""
    if x is None:
        return "None"
    if isinstance(x, bool):
        return repr(x)
    if isinstance(x, (int, np.integer)):
        return repr(int(x))
    if isinstance(x, (float, np.floating)):
        return repr(float(x))
    if isinstance(x, tuple):
        inner = ", ".join(_lit(i) for i in x)
        return f"({inner},)" if len(x) == 1 else f"({inner})"
    raise TapeCompilationError(f"cannot render static parameter {x!r}")


@dataclass
class TapeStats:
    """What the lowering pass did to the recorded graph."""

    recorded: int        #: nodes created during the tracing evaluation
    reachable: int       #: nodes reachable from the output (rest eliminated)
    dynamic: int         #: reachable nodes that depend on the input
    folded: int          #: reachable constant nodes baked into ``_c[...]``
    fused: int           #: single-use intermediates inlined into consumers
    forward_lines: int   #: forward statements in the emitted program
    backward_lines: int  #: backward statements in the emitted program


@dataclass
class CompiledTape:
    """A lowered tape: generated forward/reverse NumPy programs plus guards."""

    signature: Tuple[Tuple[int, ...], str]
    stats: TapeStats
    source: str
    _vg_fn: Callable
    _val_fn: Callable
    _consts: Tuple[Any, ...]

    def matches(self, z: np.ndarray) -> bool:
        """Shape/dtype guard: is the program valid for this input?"""
        z = np.asarray(z)
        return (z.shape, z.dtype.str) == self.signature

    def value_and_grad(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Forward + reverse program: ``(value, d value / d z)``."""
        with np.errstate(all="ignore"):
            return self._vg_fn(np.asarray(z, dtype=float), self._consts)

    def value(self, z: np.ndarray) -> np.ndarray:
        """Forward program only (the value-only consumers' fast path)."""
        with np.errstate(all="ignore"):
            return self._val_fn(np.asarray(z, dtype=float), self._consts)


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
#: ``True`` while a tracing evaluation is running (read by runtime helpers
#: that observe value-dependent control flow, e.g. ``_truthy``).
TRACING = False

_DYNAMIC_BRANCH = [False]

#: Tensor dunders whose *result* escapes the graph as a concrete Python /
#: NumPy value — a branch or mask computed from the input would be frozen
#: into the compiled program, so observing any of them on a graph-connected
#: tensor during tracing rejects the model.
_VALUE_ESCAPE_DUNDERS = ("__bool__", "__int__", "__float__", "__lt__",
                         "__le__", "__gt__", "__ge__", "__eq__", "__ne__")


def note_dynamic_branch() -> None:
    """Record that the tracing evaluation branched on an input-derived value."""
    _DYNAMIC_BRANCH[0] = True


def _watch(method: Callable) -> Callable:
    def wrapped(self, *args):
        if self._requires_graph():
            note_dynamic_branch()
        return method(self, *args)

    return wrapped


def _watch_data(slot) -> property:
    """Watched replacement for the ``Tensor.data`` slot during tracing.

    Reading ``.data`` hands the caller the raw buffer — a value escape the
    dunder watches cannot see (``float(t.data)`` never touches
    ``Tensor.__float__``).  Reads from the evaluation machinery itself
    (``repro.*`` modules: ops computing forward values, runtime helpers
    checking shapes) are trusted — value-dependent branching there goes
    through explicit :func:`note_dynamic_branch` hooks — but a read from
    model code on a graph-connected tensor is indistinguishable from a
    frozen branch, so it rejects the trace.
    """
    def getter(self):
        module = sys._getframe(1).f_globals.get("__name__", "")
        if not (module == "repro" or module.startswith("repro.")):
            if self._requires_graph():
                note_dynamic_branch()
        return slot.__get__(self, Tensor)

    return property(getter, lambda self, value: slot.__set__(self, value))


def trace(fn: Callable[[Tensor], Tensor], z0: np.ndarray):
    """Run ``fn`` once with the tracing sink installed.

    Returns ``(out, root, recorded)``: the output tensor, the input leaf and
    the list of every node :func:`repro.autodiff.ops._make` built during the
    evaluation (each carrying its ``op``/``op_ctx`` annotation).

    The compiled program freezes the traced control flow, so tracing watches
    for value-dependent escapes: comparisons, ``bool``/``int``/``float``
    coercions of graph-connected tensors, and runtime branch helpers
    (:func:`note_dynamic_branch`).  Any such observation raises
    :class:`TapeCompilationError` — the model must stay on the interpreted
    tape, which re-executes the Python control flow on every evaluation.
    """
    global TRACING
    z0 = np.asarray(z0, dtype=float)
    root = Tensor(z0, requires_grad=True)
    prev = ops._TRACE_SINK
    recorded: List[Tensor] = []
    saved = {name: getattr(Tensor, name) for name in _VALUE_ESCAPE_DUNDERS}
    saved_data = Tensor.data  # the raw slot descriptor
    prev_tracing, prev_flag = TRACING, _DYNAMIC_BRANCH[0]
    ops._TRACE_SINK = recorded
    TRACING = True
    _DYNAMIC_BRANCH[0] = False
    for name, method in saved.items():
        setattr(Tensor, name, _watch(method))
    Tensor.data = _watch_data(saved_data)
    try:
        with np.errstate(all="ignore"):
            out = fn(root)
        branched = _DYNAMIC_BRANCH[0]
    finally:
        ops._TRACE_SINK = prev
        TRACING = prev_tracing
        _DYNAMIC_BRANCH[0] = prev_flag
        for name, method in saved.items():
            setattr(Tensor, name, method)
        Tensor.data = saved_data
    if not isinstance(out, Tensor):
        raise TapeCompilationError(
            "traced function returned a non-tensor (constant w.r.t. the input)")
    if branched:
        raise TapeCompilationError(
            "the evaluation branches on an input-derived value; the compiled "
            "program would freeze that control flow")
    return out, root, recorded


# ----------------------------------------------------------------------
# program assembly helpers
# ----------------------------------------------------------------------
class _Unit:
    """One schedulable statement group of the generated program."""

    __slots__ = ("target", "stmts", "inlinable")

    def __init__(self, target: str, stmts: List[str], inlinable: bool):
        self.target = target
        self.stmts = stmts
        self.inlinable = inlinable


def _assign(target: str, expr: str) -> _Unit:
    return _Unit(target, [f"{target} = {expr}"], inlinable=True)


def _render(units: List[_Unit], ret: str, fn_name: str) -> Tuple[str, int]:
    """Liveness-prune, inline single-use pure assignments, emit source."""
    # liveness from the return statement backwards
    needed = set(_VAR_TOKEN.findall(ret))
    live: List[_Unit] = []
    for unit in reversed(units):
        if unit.target in needed:
            for stmt in unit.stmts:
                needed.update(_VAR_TOKEN.findall(stmt))
            live.append(unit)
    live.reverse()

    # use/assignment counts over the live program
    uses: Dict[str, int] = {}
    assigns: Dict[str, int] = {}
    for unit in live:
        assigns[unit.target] = assigns.get(unit.target, 0) + 1
        for stmt in unit.stmts:
            rhs = stmt.split(" = ", 1)[1] if " = " in stmt else stmt
            for tok in _VAR_TOKEN.findall(rhs):
                uses[tok] = uses.get(tok, 0) + 1
    for tok in _VAR_TOKEN.findall(ret):
        uses[tok] = uses.get(tok, 0) + 1

    # single-use, singly-assigned pure expressions fuse into their consumer
    pending: Dict[str, str] = {}
    fused = 0
    body: List[str] = []

    def substitute(text: str) -> str:
        while True:
            hit = None
            for tok in _VAR_TOKEN.findall(text):
                if tok in pending:
                    hit = tok
                    break
            if hit is None:
                return text
            expr = pending.pop(hit)
            text = re.sub(rf"\b{hit}\b", lambda m: expr, text, count=1)

    for unit in live:
        stmts = [substitute(s) for s in unit.stmts]
        if (unit.inlinable and len(stmts) == 1
                and uses.get(unit.target, 0) == 1
                and assigns.get(unit.target, 0) == 1):
            expr = stmts[0].split(" = ", 1)[1]
            if len(expr) <= MAX_INLINE_LEN:
                pending[unit.target] = expr
                fused += 1
                continue
        body.extend(stmts)
    ret = substitute(ret)

    lines = [f"def {fn_name}(z, _c):"]
    lines.extend(f"    {s}" for s in body)
    lines.append(f"    {ret}")
    return "\n".join(lines) + "\n", fused


# ----------------------------------------------------------------------
# the lowering pass
# ----------------------------------------------------------------------
class _Lowering:
    def __init__(self, out: Tensor, root: Tensor, recorded: Sequence[Tensor]):
        self.out = out
        self.root = root
        self.recorded = recorded
        self.order = _topological_order(out)          # root-first
        self.consts: List[Any] = []
        self._const_ids: Dict[int, int] = {}
        self._baked: set = set()
        self.names: Dict[int, str] = {id(root): "z"}
        self.aux: Dict[int, str] = {}                 # node id -> mask var
        self._temp = 0

        # constant classification: dynamic = depends on the input leaf
        self.dynamic: set = {id(root)}
        for node in reversed(self.order):
            if id(node) in self.dynamic:
                continue
            if any(id(p) in self.dynamic for p in node.parents):
                self.dynamic.add(id(node))
        if id(out) not in self.dynamic:
            raise TapeCompilationError("output does not depend on the input")

    # -- naming ---------------------------------------------------------
    def temp(self) -> str:
        self._temp += 1
        return f"t{self._temp}"

    def const(self, obj) -> str:
        key = id(obj)
        idx = self._const_ids.get(key)
        if idx is None:
            idx = len(self.consts)
            self.consts.append(obj)
            self._const_ids[key] = idx
        return f"_c[{idx}]"

    def ref(self, node: Tensor) -> str:
        if id(node) in self.names:
            return self.names[id(node)]
        if id(node) in self.dynamic:
            raise TapeCompilationError("dynamic node referenced before definition")
        self._baked.add(id(node))
        return self.const(node.data)

    @staticmethod
    def op_of(node: Tensor) -> str:
        op = getattr(node, "op", None)
        if op is None:
            raise TapeCompilationError(
                "graph node without an op annotation (built outside the "
                "tracing sink)")
        return op

    # -- forward --------------------------------------------------------
    _UNARY_FWD = {
        "exp": "np.exp({0})", "expm1": "np.expm1({0})", "log": "np.log({0})",
        "log1p": "np.log1p({0})", "sqrt": "np.sqrt({0})", "sin": "np.sin({0})",
        "cos": "np.cos({0})", "tanh": "np.tanh({0})",
        "sigmoid": "sps.expit({0})", "softplus": "np.logaddexp(0.0, {0})",
        "lgamma": "sps.gammaln({0})", "digamma": "sps.digamma({0})",
        "erf": "sps.erf({0})", "erfc": "sps.erfc({0})", "abs": "np.abs({0})",
    }

    def forward_unit(self, node: Tensor, var: str) -> _Unit:
        op = self.op_of(node)
        ctx = getattr(node, "op_ctx", ())
        p = [self.ref(parent) for parent in node.parents]
        stmts: List[str] = []
        expr: Optional[str] = None
        if op == "add":
            expr = f"({p[0]} + {p[1]})"
        elif op == "sub":
            expr = f"({p[0]} - {p[1]})"
        elif op == "mul":
            expr = f"({p[0]} * {p[1]})"
        elif op == "div":
            expr = f"({p[0]} / {p[1]})"
        elif op == "neg":
            expr = f"(-{p[0]})"
        elif op == "pow":
            expr = f"({p[0]} ** {p[1]})"
        elif op == "square":
            expr = f"({p[0]} * {p[0]})"
        elif op in self._UNARY_FWD:
            expr = self._UNARY_FWD[op].format(p[0])
        elif op == "relu":
            mask = f"m{var[1:]}"
            self.aux[id(node)] = mask
            stmts.append(f"{mask} = {p[0]} > 0")
            expr = f"np.where({mask}, {p[0]}, 0.0)"
        elif op in ("minimum", "maximum"):
            mask = f"m{var[1:]}"
            self.aux[id(node)] = mask
            cmp = "<=" if op == "minimum" else ">="
            stmts.append(f"{mask} = {p[0]} {cmp} {p[1]}")
            expr = f"np.{op}({p[0]}, {p[1]})"
        elif op == "clip":
            lo, hi = ctx
            mask = f"m{var[1:]}"
            self.aux[id(node)] = mask
            stmts.append(f"{mask} = ({p[0]} >= {_lit(lo)}) & ({p[0]} <= {_lit(hi)})")
            expr = f"np.clip({p[0]}, {_lit(lo)}, {_lit(hi)})"
        elif op == "where":
            cond = self.const(ctx[0])
            expr = f"np.where({cond}, {p[0]}, {p[1]})"
        elif op == "sum":
            axis, keepdims = ctx
            expr = f"np.sum({p[0]}, axis={_lit(axis)}, keepdims={_lit(keepdims)})"
        elif op == "mean":
            axis, keepdims, _count = ctx
            expr = f"np.mean({p[0]}, axis={_lit(axis)}, keepdims={_lit(keepdims)})"
        elif op == "logsumexp":
            axis, keepdims = ctx
            expr = (f"np.asarray(lse({p[0]}, axis={_lit(axis)}, "
                    f"keepdims={_lit(keepdims)}))")
        elif op == "softmax":
            axis = _lit(ctx[0])
            t = self.temp()
            stmts.append(f"{t} = np.exp({p[0]} - np.max({p[0]}, axis={axis}, "
                         f"keepdims=True))")
            expr = f"({t} / np.sum({t}, axis={axis}, keepdims=True))"
        elif op == "log_softmax":
            axis = _lit(ctx[0])
            t = self.temp()
            stmts.append(f"{t} = {p[0]} - np.max({p[0]}, axis={axis}, keepdims=True)")
            expr = (f"({t} - np.log(np.sum(np.exp({t}), axis={axis}, "
                    f"keepdims=True)))")
        elif op == "cumsum":
            expr = f"np.cumsum({p[0]}, axis={_lit(ctx[0])})"
        elif op == "matmul":
            expr = f"({p[0]} @ {p[1]})"
        elif op == "dot":
            expr = f"np.dot({p[0]}, {p[1]})"
        elif op == "outer":
            expr = f"np.outer({p[0]}, {p[1]})"
        elif op == "transpose":
            axes = ctx[0]
            expr = (f"np.transpose({p[0]})" if axes is None
                    else f"np.transpose({p[0]}, {_lit(tuple(axes))})")
        elif op == "reshape":
            expr = f"np.reshape({p[0]}, {_lit(tuple(ctx[0]))})"
        elif op == "concatenate":
            axis, _offsets = ctx
            args = ", ".join(
                ref if parent.data.ndim >= 1 else f"np.atleast_1d({ref})"
                for ref, parent in zip(p, node.parents))
            expr = f"np.concatenate([{args}], axis={_lit(axis)})"
        elif op == "stack":
            expr = f"np.stack([{', '.join(p)}], axis={_lit(ctx[0])})"
        elif op == "getitem":
            expr = f"{p[0]}[{self.const(ctx[0])}]"
        elif op == "index_update":
            idx = self.const(ctx[0])
            stmts.append(f"{var} = np.array({p[0]})")
            stmts.append(f"{var}[{idx}] = {p[1]}")
            return _Unit(var, stmts, inlinable=False)
        else:
            raise TapeCompilationError(f"unsupported op {op!r}")
        stmts.append(f"{var} = {expr}")
        return _Unit(var, stmts, inlinable=not self.aux.get(id(node)) and len(stmts) == 1)

    # -- backward -------------------------------------------------------
    def backward_exprs(self, node: Tensor, pos: int, gvar: str
                       ) -> Tuple[List[str], str]:
        """Statements + expression for the VJP of ``node`` w.r.t. parent ``pos``.

        Textual mirror of the closures in :mod:`repro.autodiff.ops` — same
        formulas, same operation order, so the result is bitwise identical.
        """
        op = self.op_of(node)
        ctx = getattr(node, "op_ctx", ())
        p = [self.ref(parent) for parent in node.parents]
        v = self.ref(node)
        g = gvar
        parent = node.parents[pos]
        pshape = _lit(tuple(parent.data.shape))
        stmts: List[str] = []
        if op == "add":
            return stmts, g
        if op == "sub":
            return stmts, g if pos == 0 else f"(-{g})"
        if op == "mul":
            return stmts, f"({g} * {p[1]})" if pos == 0 else f"({g} * {p[0]})"
        if op == "div":
            if pos == 0:
                return stmts, f"({g} / {p[1]})"
            return stmts, f"(-{g} * {p[0]} / ({p[1]} * {p[1]}))"
        if op == "neg":
            return stmts, f"(-{g})"
        if op == "pow":
            if pos == 0:
                return stmts, f"({g} * {p[1]} * {p[0]} ** ({p[1]} - 1.0))"
            t = self.temp()
            stmts.append(f"{t} = np.where({p[0]} > 0, np.log(np.where({p[0]} > 0, "
                         f"{p[0]}, 1.0)), 0.0)")
            return stmts, f"({g} * {v} * {t})"
        if op == "square":
            return stmts, f"(2.0 * {g} * {p[0]})"
        if op == "abs":
            return stmts, f"({g} * np.sign({p[0]}))"
        if op == "exp":
            return stmts, f"({g} * {v})"
        if op == "expm1":
            return stmts, f"({g} * np.exp({p[0]}))"
        if op == "log":
            return stmts, f"({g} / {p[0]})"
        if op == "log1p":
            return stmts, f"({g} / (1.0 + {p[0]}))"
        if op == "sqrt":
            return stmts, f"({g} * 0.5 / {v})"
        if op == "sin":
            return stmts, f"({g} * np.cos({p[0]}))"
        if op == "cos":
            return stmts, f"(-{g} * np.sin({p[0]}))"
        if op == "tanh":
            return stmts, f"({g} * (1.0 - {v} * {v}))"
        if op == "sigmoid":
            return stmts, f"({g} * {v} * (1.0 - {v}))"
        if op == "softplus":
            return stmts, f"({g} * sps.expit({p[0]}))"
        if op == "relu":
            return stmts, f"({g} * {self.aux[id(node)]})"
        if op == "lgamma":
            return stmts, f"({g} * sps.digamma({p[0]}))"
        if op == "digamma":
            return stmts, f"({g} * sps.polygamma(1, {p[0]}))"
        if op == "erf":
            return stmts, f"({g} * {_ERF_COEF!r} * np.exp(-{p[0]} * {p[0]}))"
        if op == "erfc":
            return stmts, f"(-{g} * {_ERF_COEF!r} * np.exp(-{p[0]} * {p[0]}))"
        if op in ("minimum", "maximum"):
            mask = self.aux[id(node)]
            return stmts, f"({g} * {mask})" if pos == 0 else f"({g} * (~{mask}))"
        if op == "clip":
            return stmts, f"({g} * {self.aux[id(node)]})"
        if op == "where":
            cond = self.const(ctx[0])
            return stmts, f"({g} * {cond})" if pos == 0 else f"({g} * (~{cond}))"
        if op in ("sum", "mean"):
            axis, keepdims = ctx[0], ctx[1]
            inner = g if op == "sum" else f"({g} / {ctx[2]})"
            if axis is not None and not keepdims:
                inner = f"np.expand_dims({inner}, {_lit(axis)})"
            return stmts, f"np.broadcast_to({inner}, {pshape}).copy()"
        if op == "logsumexp":
            axis, keepdims = ctx
            if axis is None or keepdims:
                return stmts, f"({g} * np.exp({p[0]} - {v}))"
            return stmts, (f"(np.expand_dims({g}, {_lit(axis)}) * "
                           f"np.exp({p[0]} - np.expand_dims({v}, {_lit(axis)})))")
        if op == "softmax":
            axis = _lit(ctx[0])
            t = self.temp()
            stmts.append(f"{t} = np.sum({g} * {v}, axis={axis}, keepdims=True)")
            return stmts, f"({v} * ({g} - {t}))"
        if op == "log_softmax":
            axis = _lit(ctx[0])
            return stmts, (f"({g} - np.exp({v}) * np.sum({g}, axis={axis}, "
                           f"keepdims=True))")
        if op == "cumsum":
            a = _lit(ctx[0])
            return stmts, (f"np.flip(np.cumsum(np.flip({g}, axis={a}), "
                           f"axis={a}), axis={a})")
        if op == "matmul":
            and_, bnd = node.parents[0].data.ndim, node.parents[1].data.ndim
            if pos == 0:
                if bnd == 1 and and_ == 1:
                    return stmts, f"({g} * {p[1]})"
                if bnd == 1:
                    return stmts, (f"np.outer({g}, {p[1]})" if and_ == 2
                                   else f"({g}[..., None] * {p[1]})")
                if and_ == 1:
                    return stmts, (f"({g} @ np.transpose({p[1]}))"
                                   if node.data.ndim else f"({p[1]} @ {g})")
                return stmts, f"({g} @ np.swapaxes({p[1]}, -1, -2))"
            if and_ == 1 and bnd == 1:
                return stmts, f"({g} * {p[0]})"
            if and_ == 1:
                return stmts, (f"np.outer({p[0]}, {g})" if bnd == 2
                               else f"({p[0]}[..., None] * {g})")
            return stmts, f"(np.swapaxes({p[0]}, -1, -2) @ {g})"
        if op == "dot":
            return stmts, f"({g} * {p[1]})" if pos == 0 else f"({g} * {p[0]})"
        if op == "outer":
            return stmts, f"({g} @ {p[1]})" if pos == 0 else f"({p[0]} @ {g})"
        if op == "transpose":
            axes = ctx[0]
            if axes is None:
                return stmts, f"np.transpose({g})"
            inverse = tuple(int(i) for i in np.argsort(axes))
            return stmts, f"np.transpose({g}, {_lit(inverse)})"
        if op == "reshape":
            return stmts, f"np.reshape({g}, {pshape})"
        if op == "concatenate":
            axis, offsets = ctx
            ndim = node.data.ndim
            idx = ", ".join(
                f"{offsets[pos]}:{offsets[pos + 1]}" if d == (axis % ndim) else ":"
                for d in range(ndim))
            return stmts, f"np.reshape({g}[{idx}], {pshape})"
        if op == "stack":
            return stmts, f"np.take({g}, {pos}, axis={_lit(ctx[0])})"
        if op == "getitem":
            index = ctx[0]
            idx = self.const(index)
            t = self.temp()
            stmts.append(f"{t} = np.zeros({pshape})")
            single_cell = isinstance(index, (int, np.integer)) or (
                isinstance(index, tuple)
                and all(isinstance(i, (int, np.integer)) for i in index))
            if single_cell:
                # One statically-known cell: a plain store of ``0.0 + g``
                # is bitwise-identical to ``np.add.at`` on zeros (including
                # signed-zero semantics) at a fraction of the dispatch cost.
                stmts.append(f"{t}[{idx}] = 0.0 + {g}")
            else:
                stmts.append(f"np.add.at({t}, {idx}, {g})")
            return stmts, t
        if op == "index_update":
            idx = self.const(ctx[0])
            if pos == 0:
                t = self.temp()
                stmts.append(f"{t} = np.array({g})")
                stmts.append(f"{t}[{idx}] = 0.0")
                return stmts, t
            return stmts, f"{g}[{idx}]"
        raise TapeCompilationError(f"unsupported op {op!r}")


def compile_tape(fn: Callable[[Tensor], Tensor], z0: np.ndarray,
                 telemetry=None) -> CompiledTape:
    """Lower one traced evaluation of ``fn`` at ``z0`` to generated code.

    ``fn`` maps an input :class:`Tensor` to an output tensor whose reverse
    pass is seeded with ones (a scalar potential, or a ``(C,)`` per-chain
    batch).  Returns a :class:`CompiledTape` whose ``value_and_grad`` /
    ``value`` replay the recorded computation with no per-op dispatch.
    Raises :class:`TapeCompilationError` for graphs that cannot be lowered.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, or ``None``) receives
    ``tape.trace`` and ``tape.lower`` sub-spans with graph-size attributes.
    """
    from repro.obs import as_telemetry

    telemetry = as_telemetry(telemetry)
    z0 = np.asarray(z0, dtype=float)
    with telemetry.span("tape.trace", input_shape=list(z0.shape)) as span:
        out, root, recorded = trace(fn, z0)
        span.set(recorded_nodes=len(recorded))
    with telemetry.span("tape.lower") as span:
        result = _lower_traced(out, root, recorded, z0)
        span.set(dynamic_nodes=result.stats.dynamic,
                 folded_nodes=result.stats.folded,
                 fused=result.stats.fused,
                 forward_lines=result.stats.forward_lines,
                 backward_lines=result.stats.backward_lines)
    return result


def _lower_traced(out, root, recorded, z0: np.ndarray) -> CompiledTape:
    """Lowering + codegen for an already-traced graph (see :func:`compile_tape`)."""
    low = _Lowering(out, root, recorded)
    dynamic_sched = [node for node in reversed(low.order)
                     if id(node) in low.dynamic and node is not root]
    if len(dynamic_sched) > MAX_PROGRAM_NODES:
        raise TapeCompilationError(
            f"traced graph has {len(dynamic_sched)} dynamic nodes, beyond the "
            f"{MAX_PROGRAM_NODES}-node program cap")

    # ---- forward program ------------------------------------------------
    forward_units: List[_Unit] = []
    for i, node in enumerate(dynamic_sched):
        var = f"v{i}"
        low.names[id(node)] = var
        forward_units.append(low.forward_unit(node, var))

    gnames: Dict[int, str] = {id(root): "gz"}
    for i, node in enumerate(dynamic_sched):
        gnames[id(node)] = f"g{i}"

    # ---- backward program (the interpreter's exact traversal order) -----
    backward_units: List[_Unit] = []
    seeded: set = set()
    out_g = gnames[id(out)]
    backward_units.append(
        _assign(out_g, f"np.ones({_lit(tuple(out.data.shape))})"))
    seeded.add(out_g)
    with np.errstate(all="ignore"):
        probe_cache: Dict[int, np.ndarray] = {}
        for node in low.order:                      # root (output) first
            if id(node) not in low.dynamic or node is root:
                continue
            gvar = gnames[id(node)]
            probe = probe_cache.get(id(node))
            if probe is None:
                probe = np.ones(node.data.shape)
                probe_cache[id(node)] = probe
            for pos, (parent, bfn) in enumerate(zip(node.parents, node.backward_fns)):
                if id(parent) not in low.dynamic:
                    continue                        # dead gradient: eliminated
                stmts, expr = low.backward_exprs(node, pos, gvar)
                # static unbroadcast specialization: the traced shapes tell
                # us whether the reduction is the identity
                contrib_shape = np.shape(bfn(probe))
                if contrib_shape != parent.data.shape:
                    expr = f"unbroadcast({expr}, {_lit(tuple(parent.data.shape))})"
                pg = gnames[id(parent)]
                if pg in seeded:
                    stmts.append(f"{pg} = {pg} + {expr}")
                    backward_units.append(_Unit(pg, stmts, inlinable=False))
                else:
                    stmts.append(f"{pg} = {expr}")
                    seeded.add(pg)
                    backward_units.append(
                        _Unit(pg, stmts, inlinable=len(stmts) == 1))
    if "gz" in seeded:
        grad_unit = _assign("grad", "np.zeros_like(z) + gz")
    else:
        grad_unit = _assign("grad", "np.zeros_like(z)")
    grad_unit.inlinable = False
    backward_units.append(grad_unit)

    out_ref = low.ref(out)
    vg_source, fused_vg = _render(
        forward_units + backward_units, f"return {out_ref}, grad", "_tape_vg")
    val_source, _fused_val = _render(
        [_Unit(u.target, list(u.stmts), u.inlinable) for u in forward_units],
        f"return {out_ref}", "_tape_val")

    namespace: Dict[str, Any] = {"np": np, "sps": sps, "unbroadcast": unbroadcast,
                                 "lse": _lse}
    try:
        exec(compile(vg_source, "<compiled-tape>", "exec"), namespace)
        exec(compile(val_source, "<compiled-tape-value>", "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise TapeCompilationError(f"generated program failed to parse: {exc}")

    stats = TapeStats(
        recorded=len(recorded),
        reachable=len(low.order),
        dynamic=len(dynamic_sched),
        folded=len(low._baked),
        fused=fused_vg,
        forward_lines=len(forward_units),
        backward_lines=len(backward_units),
    )
    return CompiledTape(
        signature=(z0.shape, z0.dtype.str),
        stats=stats,
        source=vg_source + "\n" + val_source,
        _vg_fn=namespace["_tape_vg"],
        _val_fn=namespace["_tape_val"],
        _consts=tuple(low.consts),
    )
