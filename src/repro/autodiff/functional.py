"""Functional helpers: ``grad`` and ``value_and_grad`` (JAX-style).

These wrap a scalar-valued function of one flat NumPy vector and return its
gradient computed by reverse-mode AD.  The inference algorithms (HMC, NUTS,
ADVI) consume log-density functions in exactly this form.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor


def eval_value_and_grad(fn: Callable[[Tensor], Tensor], x: np.ndarray) -> Tuple[float, np.ndarray]:
    """One interpreted-tape evaluation of ``fn`` and its gradient at ``x``.

    The shared single-evaluation primitive behind :func:`value_and_grad` and
    the compiled-tape validation oracle (:mod:`repro.infer.potential`): one
    forward execution recording the graph, one reverse accumulation.
    """
    x = np.asarray(x, dtype=float)
    t = Tensor(x, requires_grad=True)
    # Boundary evaluations (e.g. a constrained parameter pushed to the
    # edge of its support during leapfrog) legitimately produce inf/nan
    # densities which the samplers treat as divergences; silence the
    # NumPy warnings they would otherwise spam.
    with np.errstate(all="ignore"):
        out = fn(t)
        if not isinstance(out, Tensor):
            # Constant w.r.t. the input: zero gradient.
            return float(out), np.zeros_like(x)
        out.backward()
    g = t.grad if t.grad is not None else np.zeros_like(x)
    return float(out.data), np.asarray(g, dtype=float)


def value_and_grad(fn: Callable[[Tensor], Tensor]) -> Callable[[np.ndarray], Tuple[float, np.ndarray]]:
    """Return a function computing ``(fn(x), dfn/dx)`` for a flat vector ``x``.

    ``fn`` must accept a :class:`Tensor` and return a scalar :class:`Tensor`.
    """

    def wrapped(x: np.ndarray) -> Tuple[float, np.ndarray]:
        return eval_value_and_grad(fn, x)

    return wrapped


def grad(fn: Callable[[Tensor], Tensor]) -> Callable[[np.ndarray], np.ndarray]:
    """Return a function computing only the gradient of ``fn``."""
    vg = value_and_grad(fn)

    def wrapped(x: np.ndarray) -> np.ndarray:
        return vg(x)[1]

    return wrapped


def numerical_grad(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient, used in tests to validate the AD engine."""
    x = np.asarray(x, dtype=float)
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x.reshape(x.shape))
        flat[i] = orig - eps
        lo = fn(x.reshape(x.shape))
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return g
